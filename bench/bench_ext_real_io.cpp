/**
 * @file
 * Extension — the real-I/O layer characterized on real hardware.
 *
 * Five phases, mirroring how the paper validates its testbed (fio
 * microbenchmarks first, then end-to-end search):
 *
 *  1. Raw sweep: batches of random single-sector O_DIRECT reads
 *     through the file and uring backends at queue depths 1..64.
 *     Expected: uring IOPS scale with queue depth (one submission
 *     syscall per window) while qd-1 stays at one-request latency.
 *
 *  2. Beam-search sweep: the same DiskANN index served by memory,
 *     serial pread (file qd=1 — one blocking single-sector read per
 *     beam slot, the naive implementation), overlapped pread, and
 *     io_uring, across beam_width 1..8. Results are bit-identical by
 *     the backend contract; only the latency changes. Expected: the
 *     batched async backends approach one device round-trip per hop,
 *     so their advantage over serial pread grows with beam_width
 *     (>= 2x at beam_width >= 4 on real NVMe).
 *
 *  3. Layout design-space sweep: layout policy (id-order vs
 *     packed-BFS) x beam width x node-cache size x queue depth, all
 *     on the real file backend. Per point it reports I/O requests
 *     per query, bytes per query, cache hit rate, page reuse rate,
 *     recall, and QPS, and writes results/BENCH_layout.json. Gates:
 *     packed results must be bit-identical to id-order, and the best
 *     matched-config I/O reduction must reach
 *     $ANN_LAYOUT_MIN_IO_REDUCTION (default 1.5x). Run with
 *     --layout-only to skip phases 1-2 (the CI smoke; it still runs
 *     phase 4 — pass --no-learned to skip that too).
 *
 *  4. Learned I/O-avoidance A/B: hop records are collected over the
 *     first half of the burst query set, a logistic model is trained
 *     and its early-stop threshold calibrated on that half, then the
 *     second half is measured in four modes (off / learned entry /
 *     early stop / both) under the established discipline —
 *     bit-identical results with the toggles off, and with both on a
 *     recall@10 delta <= 0.5pp plus
 *     >= $ANN_LEARNED_MIN_IO_REDUCTION (default 1.2x) fewer
 *     IOs/query. Writes results/BENCH_learned.json. Run with
 *     --learned-only to skip phases 1-3.
 *
 *  5. Async pipelined beam search A/B: the same index served sync
 *     and async ($ANN_ASYNC_BEAM) on the file backend with a
 *     simulated per-read device latency ($ANN_IO_SIM_LATENCY_US,
 *     default 150 us here), one thread, beam 4 — the qd-starved
 *     point where the sync loop idles the CPU for one device
 *     round-trip per hop. Gates: results bit-identical to the memory
 *     backend, recall unchanged, and async QPS >=
 *     $ANN_ASYNC_MIN_SPEEDUP (default 1.3x) of sync. A second
 *     sub-phase runs an 8-way micro-batch of the same queries with
 *     the single-flight layer off vs on and gates backend reads per
 *     query at >= $ANN_ASYNC_MIN_DEDUP (default 1.1x) fewer with the
 *     layer on, with a nonzero ios_deduped count. Both tables carry
 *     the observed effective queue depth (mean in-flight reads from
 *     the I/O gauge). Writes results/BENCH_async.json. Run with
 *     --async-only to run just this phase; --layout-only and
 *     --learned-only skip it (as does --no-async).
 *
 *  6. Memory-budget (DRAM-free) A/B: one index with each record
 *     carrying its neighbours' PQ codes, served with codes
 *     DRAM-resident and again under a memory budget that spills them
 *     to a sector-aligned code file behind the code-page cache
 *     (in-beam rescoring reads the embedded copies instead).
 *     Gates: bit-identical top-k, resident index bytes down by
 *     >= $ANN_DRAMFREE_MIN_RESIDENT_REDUCTION (default 4x), backend
 *     reads per query up by <= $ANN_DRAMFREE_MAX_IO_RATIO (default
 *     1.3x), nonzero code-cache hits while spilled. Writes
 *     results/BENCH_dramfree.json. Run with --dramfree-only for just
 *     this phase; --no-dramfree skips it.
 *
 * The burst workload (and hence the exported training data) is
 * seeded: --seed N or $ANN_SEED make runs reproducible; the default
 * reproduces the historical stream.
 *
 * Environment knobs: $ANN_IO_SPILL_DIR (defaults to $ANN_CACHE_DIR)
 * places the spill files — point it at a real NVMe filesystem, not
 * tmpfs, for meaningful numbers. $ANN_NODE_CACHE_MB / $ANN_WARM_NODES
 * front the real backends with the node sector cache; passing
 * --drop-caches empties its dynamic part before every sweep point
 * (the paper's drop_caches protocol), so each point starts cold.
 * (Phases 3-4 size their caches themselves and always start cold.)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "bench_common.hh"
#include "common/env.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/report.hh"
#include "distance/distance.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "index/layout.hh"
#include "index/search_trace.hh"
#include "learn/hoplog.hh"
#include "learn/model.hh"
#include "learn/policy.hh"
#include "storage/io_backend.hh"
#include "storage/node_cache.hh"
#include "workload/generator.hh"

namespace {

using namespace ann;

double
nowUs()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count()) /
           1000.0;
}

/** Spill @p image into a fresh backend of @p kind at @p queue_depth. */
std::unique_ptr<storage::IoBackend>
spillBackend(storage::IoBackendKind kind,
             const std::vector<std::uint8_t> &image,
             unsigned queue_depth)
{
    storage::IoOptions options;
    options.kind = kind;
    options.queue_depth = queue_depth;
    auto sink = storage::makeIoSink(options, image.size());
    sink->append(image.data(), image.size());
    return sink->finish();
}

struct RawPoint
{
    double kiops = 0.0;
    double batch_p99_us = 0.0;
};

/**
 * Issue @p rounds batches of @p batch_size random single-sector reads
 * and report throughput plus P99 batch latency.
 */
RawPoint
rawSweepPoint(storage::IoBackend &backend, std::size_t batch_size,
              std::size_t rounds)
{
    const std::uint64_t sectors =
        backend.sizeBytes() / storage::kIoSectorBytes;
    storage::AlignedBuffer buf;
    std::uint8_t *dst =
        buf.ensure(batch_size * storage::kIoSectorBytes);
    Rng rng(123);

    std::vector<storage::IoRequest> requests(batch_size);
    std::vector<double> latencies;
    latencies.reserve(rounds);
    const double start = nowUs();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t i = 0; i < batch_size; ++i)
            requests[i] = {rng.nextBelow(sectors), 1,
                           dst + i * storage::kIoSectorBytes};
        const double t0 = nowUs();
        backend.readBatch(requests.data(), requests.size());
        latencies.push_back(nowUs() - t0);
    }
    const double elapsed_us = nowUs() - start;

    RawPoint point;
    point.kiops = static_cast<double>(batch_size * rounds) * 1000.0 /
                  elapsed_us;
    point.batch_p99_us = percentile(std::move(latencies), 99.0);
    return point;
}

struct SearchPoint
{
    double qps = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
};

SearchPoint
searchSweepPoint(const DiskAnnIndex &index,
                 const workload::Dataset &data,
                 const DiskAnnSearchParams &params)
{
    std::vector<double> latencies;
    latencies.reserve(data.num_queries);
    const double start = nowUs();
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const double t0 = nowUs();
        (void)index.search(data.query(q), params);
        latencies.push_back(nowUs() - t0);
    }
    const double elapsed_us = nowUs() - start;

    SearchPoint point;
    point.qps = static_cast<double>(data.num_queries) * 1e6 /
                elapsed_us;
    point.mean_us = mean(latencies);
    point.p99_us = percentile(std::move(latencies), 99.0);
    return point;
}

/** One cell of the phase-3 layout design-space sweep. */
struct LayoutPoint
{
    LayoutPolicy layout = LayoutPolicy::IdOrder;
    std::size_t beam = 4;
    std::size_t cache_kib = 0;
    unsigned qd = 1;

    double ios_per_query = 0.0;   ///< read requests reaching the backend
    double bytes_per_query = 0.0; ///< sectors fetched x 4 KiB
    double hit_rate = 0.0;        ///< node-cache hits / lookups
    double page_reuse = 0.0;      ///< admitted pages that served a hit
    double recall = 0.0;
    double qps = 0.0;
};

/**
 * Fill the I/O-characterization fields of @p point. The point starts
 * cold (dynamic node cache dropped), then the first half of the query
 * set warms the cache and the second half — distinct queries sharing
 * only the hot graph regions — is measured: the steady state a
 * serving system runs in, not the fill transient.
 */
void
layoutSweepPoint(DiskAnnIndex &index, const workload::Dataset &data,
                 LayoutPoint &point)
{
    index.dropNodeCache();
    DiskAnnSearchParams params;
    params.search_list = 64;
    params.beam_width = point.beam;

    const std::size_t warmup = data.num_queries / 2;
    for (std::size_t q = 0; q < warmup; ++q)
        (void)index.search(data.query(q), params);

    const storage::NodeCacheStats before = index.nodeCacheStats();
    std::uint64_t requests = 0, sectors = 0;
    double recall_sum = 0.0;
    const double start = nowUs();
    for (std::size_t q = warmup; q < data.num_queries; ++q) {
        SearchTraceRecorder recorder;
        const SearchResult result =
            index.search(data.query(q), params, &recorder);
        for (const SearchStep &step : recorder.steps())
            requests += step.reads.size();
        sectors += recorder.totalSectors();
        recall_sum +=
            recallAtK(data.ground_truth[q], result, params.k);
    }
    const double elapsed_us = nowUs() - start;
    const auto nq =
        static_cast<double>(data.num_queries - warmup);

    point.ios_per_query = static_cast<double>(requests) / nq;
    point.bytes_per_query =
        static_cast<double>(sectors * storage::kIoSectorBytes) / nq;
    const storage::NodeCacheStats delta =
        index.nodeCacheStats() - before;
    point.hit_rate = delta.hitRate();
    point.page_reuse = delta.pageReuseRate();
    point.recall = recall_sum / nq;
    point.qps = nq * 1e6 / elapsed_us;
}

/** One arm of the phase-4 learned I/O-avoidance A/B. */
struct LearnedPoint
{
    const char *label = "";
    double ios_per_query = 0.0;
    double recall = 0.0;
    double qps = 0.0;
};

/**
 * Measure one learned-policy arm under the phase-3 discipline: cold
 * start, the train half warms the cache, the eval half is measured.
 * The learned toggles are whatever the caller set — warming runs
 * under the same policy as measurement, like a serving system would.
 * @p results, when non-null, receives the eval-half results for
 * bit-identity comparison.
 */
void
learnedSweepPoint(DiskAnnIndex &index, const workload::Dataset &data,
                  const DiskAnnSearchParams &params, std::size_t split,
                  LearnedPoint &point,
                  std::vector<SearchResult> *results = nullptr)
{
    index.dropNodeCache();
    for (std::size_t q = 0; q < split; ++q)
        (void)index.search(data.query(q), params);

    std::uint64_t requests = 0;
    double recall_sum = 0.0;
    const double start = nowUs();
    for (std::size_t q = split; q < data.num_queries; ++q) {
        SearchTraceRecorder recorder;
        const SearchResult result =
            index.search(data.query(q), params, &recorder);
        for (const SearchStep &step : recorder.steps())
            requests += step.reads.size();
        recall_sum +=
            recallAtK(data.ground_truth[q], result, params.k);
        if (results != nullptr)
            results->push_back(result);
    }
    const double elapsed_us = nowUs() - start;
    const auto nq = static_cast<double>(data.num_queries - split);

    point.ios_per_query = static_cast<double>(requests) / nq;
    point.recall = recall_sum / nq;
    point.qps = nq * 1e6 / elapsed_us;
}

/**
 * Phase 3: the layout design-space sweep and its gates (bit-identity
 * and matched-config I/O reduction). Writes BENCH_layout.json.
 */
bool
runLayoutPhase(DiskAnnIndex &id_index, const DiskAnnBuildParams &build,
               const workload::Dataset &skew,
               const workload::Dataset &dataset)
{
    bool ok = true;

    // Same data, same graph parameters and seed — only the on-disk
    // placement differs, so any result divergence is a layout bug.
    DiskAnnIndex packed;
    DiskAnnBuildParams packed_build = build;
    packed_build.layout = LayoutPolicy::PackedBfs;
    packed.build(skew.baseView(), packed_build);

    // Bit-identity gate on the memory backend: the permutation must
    // be invisible to search (ids AND distances).
    bool identical = true;
    {
        id_index.setIoMode({});
        packed.setIoMode({});
        DiskAnnSearchParams params;
        params.search_list = 64;
        params.beam_width = 4;
        for (std::size_t q = 0; q < skew.num_queries; ++q) {
            const SearchResult a = id_index.search(skew.query(q),
                                                params);
            const SearchResult b = packed.search(skew.query(q),
                                                 params);
            if (a.size() != b.size()) {
                identical = false;
            } else {
                for (std::size_t i = 0; i < a.size(); ++i)
                    if (a[i].id != b[i].id ||
                        a[i].distance != b[i].distance)
                        identical = false;
            }
            if (!identical)
                break;
        }
        std::cout << "packed-BFS vs id-order top-k bit-identical: "
                  << (identical ? "yes" : "NO") << "\n";
        if (!identical) {
            std::cerr << "FAIL: packed layout changed search "
                         "results\n";
            ok = false;
        }
    }

    TextTable layout_table(
        "layout design-space sweep (file backend, search_list=64, "
        "cold start per point)");
    layout_table.setHeader({"layout", "beam", "cache KiB", "qd",
                            "IOs/query", "KiB/query", "hit rate",
                            "page reuse", "recall@10", "QPS"});
    // Cache sizes scale with the index: none, 1/8, and 1/2 of the
    // node file. Never the whole image — there both layouts trivially
    // converge (everything resident, zero steady-state I/O).
    const std::size_t image_bytes =
        static_cast<std::size_t>(id_index.numSectors()) * 4096;
    std::vector<LayoutPoint> points;
    for (const std::size_t cache_bytes : {std::size_t{0},
                                          image_bytes / 8,
                                          image_bytes / 2}) {
        for (const unsigned qd : {1u, 16u}) {
            storage::IoOptions io;
            io.kind = storage::IoBackendKind::File;
            io.queue_depth = qd;
            io.node_cache.capacity_bytes = cache_bytes;
            for (DiskAnnIndex *target : {&id_index, &packed}) {
                target->setIoMode(io);
                for (const std::size_t beam : {std::size_t{2},
                                               std::size_t{4}}) {
                    LayoutPoint point;
                    point.layout = target->layout();
                    point.beam = beam;
                    point.cache_kib = cache_bytes / 1024;
                    point.qd = qd;
                    layoutSweepPoint(*target, skew, point);
                    layout_table.addRow(
                        {layoutPolicyName(point.layout),
                         std::to_string(beam),
                         std::to_string(point.cache_kib),
                         std::to_string(qd),
                         formatDouble(point.ios_per_query, 1),
                         formatDouble(point.bytes_per_query / 1024.0,
                                      1),
                         formatDouble(point.hit_rate, 3),
                         formatDouble(point.page_reuse, 3),
                         formatDouble(point.recall, 3),
                         formatDouble(point.qps, 0)});
                    points.push_back(point);
                }
            }
        }
    }
    layout_table.print(std::cout);

    // Matched-config I/O reduction: id-order IOs / packed IOs at the
    // same (beam, cache, qd). The acceptance target is the best cell
    // — packing is allowed to need the page cache to pay off.
    double best_reduction = 0.0;
    double best_beam = 0, best_cache = 0, best_qd = 0;
    for (const LayoutPoint &id_point : points) {
        if (id_point.layout != LayoutPolicy::IdOrder)
            continue;
        for (const LayoutPoint &packed_point : points) {
            if (packed_point.layout != LayoutPolicy::PackedBfs ||
                packed_point.beam != id_point.beam ||
                packed_point.cache_kib != id_point.cache_kib ||
                packed_point.qd != id_point.qd)
                continue;
            if (id_point.recall != packed_point.recall) {
                std::cerr << "FAIL: recall differs between layouts "
                             "at equal config\n";
                ok = false;
            }
            const double reduction =
                id_point.ios_per_query /
                std::max(packed_point.ios_per_query, 1e-9);
            if (reduction > best_reduction) {
                best_reduction = reduction;
                best_beam = static_cast<double>(id_point.beam);
                best_cache = static_cast<double>(id_point.cache_kib);
                best_qd = id_point.qd;
            }
        }
    }
    const double min_reduction = [] {
        const char *env =
            std::getenv("ANN_LAYOUT_MIN_IO_REDUCTION");
        return env != nullptr ? std::atof(env) : 1.5;
    }();
    std::cout << "best packed-BFS I/O reduction: "
              << formatDouble(best_reduction, 2) << "x (beam="
              << best_beam << ", cache=" << best_cache
              << " KiB, qd=" << best_qd << "); gate >= "
              << formatDouble(min_reduction, 2) << "x\n";
    if (best_reduction < min_reduction) {
        std::cerr << "FAIL: packed layout saves too little I/O\n";
        ok = false;
    }

    const std::string json_path =
        core::resultsDir() + "/BENCH_layout.json";
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"dataset\": \"%s\",\n"
                     "  \"queries\": %zu,\n  \"points\": [\n",
                     dataset.name.c_str(), dataset.num_queries);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const LayoutPoint &p = points[i];
            std::fprintf(
                f,
                "    {\"layout\": \"%s\", \"beam\": %zu, "
                "\"cache_kib\": %zu, \"qd\": %u, "
                "\"ios_per_query\": %.2f, \"bytes_per_query\": %.0f, "
                "\"hit_rate\": %.4f, \"page_reuse_rate\": %.4f, "
                "\"recall\": %.4f, \"qps\": %.1f}%s\n",
                layoutPolicyName(p.layout), p.beam, p.cache_kib, p.qd,
                p.ios_per_query, p.bytes_per_query, p.hit_rate,
                p.page_reuse, p.recall, p.qps,
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"io_reduction_best\": %.3f,\n"
                     "  \"min_io_reduction_gate\": %.2f,\n"
                     "  \"bit_identical\": %s\n}\n",
                     best_reduction, min_reduction,
                     identical ? "true" : "false");
        std::fclose(f);
        std::cout << "wrote " << json_path << "\n";
    } else {
        std::cerr << "FAIL: cannot write " << json_path << "\n";
        ok = false;
    }
    return ok;
}

/**
 * Phase 4: the learned I/O-avoidance A/B. Collects labeled hop
 * records over the train half of the burst query set, fits a logistic
 * model, calibrates its early-stop threshold on that same half, then
 * measures the eval half in four modes. Gates: bit-identity with the
 * toggles off, recall@10 delta <= 0.5pp and I/O reduction >=
 * $ANN_LEARNED_MIN_IO_REDUCTION with both toggles on. Writes
 * BENCH_learned.json.
 */
bool
runLearnedPhase(DiskAnnIndex &index, const workload::Dataset &skew,
                std::uint64_t seed)
{
    bool ok = true;

    // Serving config for the A/B: real file backend, 1/8-image node
    // cache plus a BFS warm set — the resident pool that
    // $ANN_LEARNED_ENTRY scores at zero I/O.
    const std::size_t image_bytes =
        static_cast<std::size_t>(index.numSectors()) * 4096;
    storage::IoOptions io;
    io.kind = storage::IoBackendKind::File;
    io.queue_depth = 16;
    io.node_cache.capacity_bytes = image_bytes / 8;
    io.node_cache.warm_nodes = 512;
    index.setIoMode(io);

    DiskAnnSearchParams params;
    params.search_list = 64;
    params.beam_width = 4;

    const std::size_t split = skew.num_queries / 2;

    // The phase drives the process-wide learned policy; start from a
    // clean slate (and leave one behind for whoever runs next).
    learn::setLearnedEntryEnabled(false);
    learn::setEarlyStopEnabled(false);
    learn::setEarlyStopThresholdOverride(-1.0f);
    learn::setActiveModel(nullptr);

    LearnedPoint base;
    base.label = "off (baseline)";
    std::vector<SearchResult> base_results;
    base_results.reserve(skew.num_queries - split);
    learnedSweepPoint(index, skew, params, split, base,
                      &base_results);

    // The train half is split again: the model fits on the first 60%
    // of its queries and the early-stop gate calibrates on the last
    // 40%. A threshold validated on the model's own training queries
    // memorizes their trajectories and does not transfer to eval —
    // the held-out block is what makes the calibration honest. The
    // block is CONTIGUOUS on purpose: the burst workload repeats
    // correlated queries within a burst, so an interleaved split
    // would scatter near-duplicates of the fit queries into the
    // calibration set and leak the training distribution.
    const std::size_t fit_end = split * 3 / 5;
    const auto isCalibQuery = [fit_end, split](std::size_t q) {
        return q >= fit_end && q < split;
    };
    const std::size_t n_calib = split - fit_end;

    // Training data: labeled per-hop records from the fit queries.
    const auto collectTraces = [&] {
        std::vector<learn::QueryHopTrace> traces;
        traces.reserve(split - n_calib);
        for (std::size_t q = 0; q < split; ++q) {
            if (isCalibQuery(q))
                continue;
            SearchTraceRecorder recorder;
            recorder.enableHopCapture();
            (void)index.search(skew.query(q), params, &recorder);
            learn::QueryHopTrace trace;
            trace.query_seq = q;
            trace.query_code = recorder.queryCode();
            trace.hops = recorder.takeHopRecords();
            traces.push_back(std::move(trace));
        }
        return traces;
    };
    learn::TrainParams train_params;
    // A small MLP separates "converged tail" from "still exploring"
    // noticeably better than plain logreg on the hop features.
    train_params.hidden = 8;
    train_params.epochs = 60;
    train_params.seed = seed;
    const auto fitModel =
        [&](const std::vector<learn::QueryHopTrace> &traces,
            std::size_t &n_samples,
            std::size_t &n_positives) -> learn::Model {
        const auto samples = learn::samplesFromTraces(traces);
        n_samples = samples.size();
        n_positives = 0;
        for (const auto &sample : samples)
            n_positives += sample.y > 0.5f ? 1 : 0;
        ANN_CHECK(n_positives > 0 && n_positives < samples.size(),
                  "degenerate hop-record labels: ", n_positives, "/",
                  samples.size(), " positive");
        return learn::Model::train(samples, train_params);
    };

    // Stage 1: model from medoid-start traces; it drives the learned
    // entry selection.
    auto traces = collectTraces();
    std::size_t n_samples = 0, positives = 0;
    learn::Model model = fitModel(traces, n_samples, positives);
    learn::setActiveModel(
        std::make_shared<const learn::Model>(model));

    // Stages 2+: the early-stop gate runs alongside the learned
    // entry, which shifts hop numbering and frontier shape relative
    // to medoid starts — and retraining in turn shifts which entry
    // the model picks. Iterate collect-with-entry-live -> retrain so
    // the stop model converges onto the trajectory distribution it
    // will actually be asked about.
    learn::setLearnedEntryEnabled(true);
    for (int stage = 0; stage < 2; ++stage) {
        traces = collectTraces();
        model = fitModel(traces, n_samples, positives);
        learn::setActiveModel(
            std::make_shared<const learn::Model>(model));
    }
    learn::setLearnedEntryEnabled(false);

    // Offline-analysis hook: $ANN_LEARN_DEBUG_DIR dumps the training
    // traces and the fitted model for inspection with anntrain.
    if (const char *dir = std::getenv("ANN_LEARN_DEBUG_DIR")) {
        learn::writeHopCsvFile(std::string(dir) + "/learned_hops.csv",
                               traces);
        model.saveFile(std::string(dir) + "/learned.model");
    }

    // Calibrate the early-stop gate on the held-out calibration
    // queries — queries the model never trained on. The stop gate
    // ships alongside the learned entry, so the calibration baseline
    // is entry-on/stop-off: the budget here buys the STOP's recall
    // cost alone (the entry's own cost shows up in the A/B table and
    // counts against the eval gate).
    //
    // The gate has two knobs — threshold and patience — and per-hop
    // false-stop rates compound across a query, so a percentile of
    // positive predictions is only an anchor. Search the (patience x
    // geometric-threshold) grid and keep the point pruning the most
    // hops whose measured held-out recall cost stays within 0.25pp
    // (half the eval gate; threshold 0 disables the gate and is the
    // always-valid fallback).
    const auto heldOutPoint = [&](double &recall, double &hops) {
        double recall_sum = 0.0;
        std::size_t hop_sum = 0;
        for (std::size_t q = 0; q < split; ++q) {
            if (!isCalibQuery(q))
                continue;
            SearchTraceRecorder recorder;
            recorder.enableHopCapture();
            const SearchResult res =
                index.search(skew.query(q), params, &recorder);
            recall_sum +=
                recallAtK(skew.ground_truth[q], res, params.k);
            hop_sum += recorder.takeHopRecords().size();
        }
        const double n = static_cast<double>(n_calib);
        recall = recall_sum / n;
        hops = static_cast<double>(hop_sum) / n;
    };
    learn::setLearnedEntryEnabled(true);
    double calib_base = 0.0, base_hops = 0.0;
    heldOutPoint(calib_base, base_hops);
    const float anchor = model.positivePercentile(
        learn::samplesFromTraces(traces), 20.0);
    // Half-neighbor slack: with tens of calibration queries the mean
    // recall moves in whole-neighbor steps, and the boundary step
    // must not be lost to float rounding.
    const double calib_budget =
        0.0025 + 0.5 / (static_cast<double>(n_calib) *
                        static_cast<double>(params.k));
    float threshold = 0.0f;
    std::size_t patience = learn::earlyStopPatience();
    const std::size_t default_patience = patience;
    double best_saved = 0.0;
    learn::setEarlyStopEnabled(true);
    for (std::size_t pat = 2; pat <= 4; ++pat) {
        learn::setEarlyStopPatience(pat);
        for (float candidate = anchor; candidate > anchor / 4096.0f;
             candidate *= 0.7f) {
            learn::setEarlyStopThresholdOverride(candidate);
            double recall = 0.0, hops = 0.0;
            heldOutPoint(recall, hops);
            const double saved = base_hops - hops;
            // Smaller thresholds only fire the gate less; once the
            // savings are gone this ladder is exhausted.
            if (saved <= 0.0)
                break;
            if (calib_base - recall > calib_budget)
                continue;
            std::cout << "  calibrate patience=" << pat
                      << " t=" << formatDouble(candidate, 5)
                      << " held-out recall " << formatDouble(recall, 4)
                      << " (base " << formatDouble(calib_base, 4)
                      << "), hops saved/query "
                      << formatDouble(saved, 1) << "\n";
            if (saved > best_saved) {
                best_saved = saved;
                threshold = candidate;
                patience = pat;
            }
            // Savings shrink monotonically as the threshold drops, so
            // the first valid point is this ladder's best.
            break;
        }
    }
    learn::setLearnedEntryEnabled(false);
    learn::setEarlyStopEnabled(false);
    learn::setEarlyStopThresholdOverride(-1.0f);
    learn::setEarlyStopPatience(threshold > 0.0f ? patience
                                                 : default_patience);
    model.setThreshold(threshold);
    learn::setActiveModel(
        std::make_shared<const learn::Model>(model));
    std::cout << "early-stop gate calibrated: threshold "
              << formatDouble(threshold, 5) << ", patience "
              << patience << " (anchor " << formatDouble(anchor, 5)
              << " = 20th pct of positives, held-out hops saved/query "
              << formatDouble(best_saved, 1) << ")\n";

    // Bit-identity gate: a loaded model with the toggles off must be
    // invisible to search — ids AND distances.
    bool identical = true;
    {
        LearnedPoint off;
        off.label = "off (model loaded)";
        std::vector<SearchResult> off_results;
        off_results.reserve(skew.num_queries - split);
        learnedSweepPoint(index, skew, params, split, off,
                          &off_results);
        identical = off_results == base_results;
        std::cout << "learned toggles off bit-identical: "
                  << (identical ? "yes" : "NO") << "\n";
        if (!identical) {
            std::cerr << "FAIL: loaded model changed results with "
                         "toggles off\n";
            ok = false;
        }
    }

    LearnedPoint entry_only, stop_only, both;
    entry_only.label = "learned entry";
    stop_only.label = "early stop";
    both.label = "entry + stop";
    learn::setLearnedEntryEnabled(true);
    learnedSweepPoint(index, skew, params, split, entry_only);
    learn::setEarlyStopEnabled(true);
    learnedSweepPoint(index, skew, params, split, both);
    learn::setLearnedEntryEnabled(false);
    learnedSweepPoint(index, skew, params, split, stop_only);
    learn::setEarlyStopEnabled(false);

    TextTable table("learned I/O-avoidance A/B (file backend, "
                    "search_list=64, beam=4, cache=image/8)");
    table.setHeader({"mode", "IOs/query", "recall@10", "QPS"});
    for (const LearnedPoint *p :
         {&base, &entry_only, &stop_only, &both})
        table.addRow({p->label,
                      formatDouble(p->ios_per_query, 1),
                      formatDouble(p->recall, 3),
                      formatDouble(p->qps, 0)});
    table.print(std::cout);

    const double recall_delta = base.recall - both.recall;
    const double reduction =
        base.ios_per_query / std::max(both.ios_per_query, 1e-9);
    const double min_reduction = [] {
        const char *env =
            std::getenv("ANN_LEARNED_MIN_IO_REDUCTION");
        return env != nullptr ? std::atof(env) : 1.2;
    }();
    std::cout << "learned entry+stop: " << formatDouble(reduction, 2)
              << "x fewer IOs/query (gate >= "
              << formatDouble(min_reduction, 2)
              << "x), recall delta "
              << formatDouble(recall_delta * 100.0, 2)
              << "pp (gate <= 0.50pp), threshold "
              << formatDouble(threshold, 4) << "\n";
    if (recall_delta > 0.005) {
        std::cerr << "FAIL: learned policies cost too much recall\n";
        ok = false;
    }
    if (reduction < min_reduction) {
        std::cerr << "FAIL: learned policies save too little I/O\n";
        ok = false;
    }

    const std::string json_path =
        core::resultsDir() + "/BENCH_learned.json";
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"dataset\": \"%s\",\n"
                     "  \"seed\": %llu,\n"
                     "  \"queries\": %zu,\n"
                     "  \"train_queries\": %zu,\n"
                     "  \"samples\": %zu,\n"
                     "  \"positives\": %zu,\n"
                     "  \"threshold\": %.6f,\n"
                     "  \"patience\": %zu,\n  \"points\": [\n",
                     skew.name.c_str(),
                     static_cast<unsigned long long>(seed),
                     skew.num_queries, split, n_samples,
                     positives, static_cast<double>(threshold),
                     learn::earlyStopPatience());
        const LearnedPoint *arms[] = {&base, &entry_only, &stop_only,
                                      &both};
        for (std::size_t i = 0; i < 4; ++i) {
            const LearnedPoint &p = *arms[i];
            std::fprintf(f,
                         "    {\"mode\": \"%s\", "
                         "\"ios_per_query\": %.2f, "
                         "\"recall\": %.4f, \"qps\": %.1f}%s\n",
                         p.label, p.ios_per_query, p.recall, p.qps,
                         i + 1 < 4 ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"recall_delta\": %.4f,\n"
                     "  \"io_reduction\": %.3f,\n"
                     "  \"min_io_reduction_gate\": %.2f,\n"
                     "  \"bit_identical\": %s\n}\n",
                     recall_delta, reduction, min_reduction,
                     identical ? "true" : "false");
        std::fclose(f);
        std::cout << "wrote " << json_path << "\n";
    } else {
        std::cerr << "FAIL: cannot write " << json_path << "\n";
        ok = false;
    }

    learn::setActiveModel(nullptr);
    return ok;
}

/** One arm of the phase-5 async pipelining A/B. */
struct AsyncPoint
{
    const char *label = "";
    double qps = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    double hop_reads = 0.0;   ///< reads issued at hop time (traces);
                              ///< spec-stash hits never show up here
    double backend_ops = 0.0; ///< IoRequests reaching the backend,
                              ///< speculative reads included
    double eff_qd = 0.0;        ///< mean in-flight reads (I/O gauge)
    double recall = 0.0;
};

/**
 * Measure one async-toggle arm single-threaded over the whole query
 * set. Logical reads come from the hop traces (identical across arms
 * by the bit-identity contract); backend ops and effective queue
 * depth come from the process-wide I/O gauge, so speculative reads
 * that never serve a hop are charged honestly.
 */
void
asyncSweepPoint(DiskAnnIndex &index, const workload::Dataset &data,
                const DiskAnnSearchParams &params, AsyncPoint &point,
                std::vector<SearchResult> *results = nullptr)
{
    std::vector<double> latencies;
    latencies.reserve(data.num_queries);
    std::uint64_t requests = 0;
    double recall_sum = 0.0;
    const storage::IoGaugeSnapshot gauge0 = storage::ioGaugeSnapshot();
    const double start = nowUs();
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        SearchTraceRecorder recorder;
        const double t0 = nowUs();
        const SearchResult result =
            index.search(data.query(q), params, &recorder);
        latencies.push_back(nowUs() - t0);
        for (const SearchStep &step : recorder.steps())
            requests += step.reads.size();
        recall_sum +=
            recallAtK(data.ground_truth[q], result, params.k);
        if (results != nullptr)
            results->push_back(result);
    }
    const double elapsed_us = nowUs() - start;
    const storage::IoGaugeSnapshot gauge1 = storage::ioGaugeSnapshot();
    const auto nq = static_cast<double>(data.num_queries);

    point.qps = nq * 1e6 / elapsed_us;
    point.mean_us = mean(latencies);
    point.p99_us = percentile(std::move(latencies), 99.0);
    point.hop_reads = static_cast<double>(requests) / nq;
    point.backend_ops =
        static_cast<double>(gauge1.ops - gauge0.ops) / nq;
    point.eff_qd = gauge1.meanDepthSince(gauge0);
    point.recall = recall_sum / nq;
}

/** One arm of the phase-5 single-flight dedup sub-phase. */
struct DedupArm
{
    const char *label = "";
    double qps = 0.0;
    double backend_ops = 0.0; ///< IoRequests per query per thread
    double eff_qd = 0.0;
    std::uint64_t deduped = 0; ///< reads served by attaching to a flight
};

/**
 * Phase 5: the async pipelined beam-search A/B (sync vs
 * $ANN_ASYNC_BEAM at a qd-starved serving point) and the cross-query
 * single-flight dedup gate under an 8-way micro-batch. Writes
 * BENCH_async.json.
 */
bool
runAsyncPhase(DiskAnnIndex &index, const workload::Dataset &skew)
{
    bool ok = true;
    DiskAnnSearchParams params;
    params.search_list = 64;
    params.beam_width = 4;

    // Whatever happens below, leave the process-wide toggles at their
    // defaults for whoever runs next.
    struct ToggleReset
    {
        ~ToggleReset()
        {
            storage::setAsyncBeamEnabled(false);
            storage::setSingleFlightEnabled(true);
        }
    } reset;

    // Memory-backend reference: async on real I/O must reproduce it
    // bit for bit.
    index.setIoMode({});
    std::vector<SearchResult> reference;
    reference.reserve(skew.num_queries);
    for (std::size_t q = 0; q < skew.num_queries; ++q)
        reference.push_back(index.search(skew.query(q), params));

    // The qd-starved serving point: one thread, beam 4, no node
    // cache, every node read paying a simulated device latency. The
    // sync loop stalls one device round-trip per hop with the CPU
    // idle; the async loop scores completed nodes while the rest of
    // the hop is in flight and speculates the next frontier, so this
    // is exactly where pipelining has to show up.
    const unsigned sim_latency_us =
        static_cast<unsigned>(std::max<std::int64_t>(
            0, envInt("ANN_IO_SIM_LATENCY_US", 150)));
    storage::IoOptions io;
    io.kind = storage::IoBackendKind::File;
    io.queue_depth = 16;
    io.sim_latency_us = sim_latency_us;
    index.setIoMode(io);

    storage::setAsyncBeamEnabled(false);
    AsyncPoint sync_point;
    sync_point.label = "sync";
    std::vector<SearchResult> sync_results;
    sync_results.reserve(skew.num_queries);
    asyncSweepPoint(index, skew, params, sync_point, &sync_results);

    storage::setAsyncBeamEnabled(true);
    AsyncPoint async_point;
    async_point.label = "async";
    std::vector<SearchResult> async_results;
    async_results.reserve(skew.num_queries);
    asyncSweepPoint(index, skew, params, async_point, &async_results);
    storage::setAsyncBeamEnabled(false);

    const bool identical =
        sync_results == reference && async_results == reference;
    std::cout << "sync and async top-k bit-identical to memory: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical) {
        std::cerr << "FAIL: async beam search changed results\n";
        ok = false;
    }

    TextTable table("async pipelined beam search A/B (file backend, "
                    "sim latency " +
                    std::to_string(sim_latency_us) +
                    " us, search_list=64, beam=4, 1 thread)");
    table.setHeader({"mode", "QPS", "mean (us)", "P99 (us)",
                     "hop reads/q", "IOs/query", "eff QD",
                     "recall@10"});
    for (const AsyncPoint *p : {&sync_point, &async_point})
        table.addRow({p->label, formatDouble(p->qps, 0),
                      formatDouble(p->mean_us, 1),
                      formatDouble(p->p99_us, 1),
                      formatDouble(p->hop_reads, 1),
                      formatDouble(p->backend_ops, 1),
                      formatDouble(p->eff_qd, 2),
                      formatDouble(p->recall, 3)});
    table.print(std::cout);

    const double speedup =
        async_point.qps / std::max(sync_point.qps, 1e-9);
    const double min_speedup = [] {
        const char *env = std::getenv("ANN_ASYNC_MIN_SPEEDUP");
        return env != nullptr ? std::atof(env) : 1.3;
    }();
    std::cout << "async speedup: " << formatDouble(speedup, 2)
              << "x (gate >= " << formatDouble(min_speedup, 2)
              << "x), eff QD " << formatDouble(sync_point.eff_qd, 2)
              << " -> " << formatDouble(async_point.eff_qd, 2)
              << "\n";
    if (speedup < min_speedup) {
        std::cerr << "FAIL: async pipelining saves too little\n";
        ok = false;
    }
    if (async_point.recall != sync_point.recall) {
        std::cerr << "FAIL: async changed recall\n";
        ok = false;
    }

    // Cross-query single-flight dedup: an 8-way micro-batch running
    // the same queries nearly in lockstep misses the same hot sectors
    // at the same time. With the layer off every thread pays its own
    // backend read for a concurrent miss; with it on one owner reads
    // and the rest attach to the flight. The cache is deliberately
    // small so the burst working set keeps missing instead of going
    // fully resident after the first pass. The arms run the sync
    // demand path: every read goes through the cache, so the off/on
    // backend-I/O ratio isolates the single-flight layer (the async
    // path's speculative reads target a private per-query stash and
    // would dilute the measurement; its single-flight interplay is
    // covered by the concurrency tests).
    constexpr std::size_t kThreads = 8;
    storage::IoOptions dedup_io = io;
    dedup_io.node_cache.capacity_bytes =
        256 * storage::kIoSectorBytes;

    const auto dedupArm = [&](bool flights_on, DedupArm &arm) {
        storage::setSingleFlightEnabled(flights_on);
        index.setIoMode(dedup_io); // fresh backend, cold cache
        const storage::NodeCacheStats cache0 = index.nodeCacheStats();
        const storage::IoGaugeSnapshot gauge0 =
            storage::ioGaugeSnapshot();
        const double start = nowUs();
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&] {
                for (std::size_t q = 0; q < skew.num_queries; ++q)
                    (void)index.search(skew.query(q), params);
            });
        for (auto &thread : threads)
            thread.join();
        const double elapsed_us = nowUs() - start;
        const storage::IoGaugeSnapshot gauge1 =
            storage::ioGaugeSnapshot();
        const storage::NodeCacheStats delta =
            index.nodeCacheStats() - cache0;
        const auto n =
            static_cast<double>(skew.num_queries * kThreads);
        arm.qps = n * 1e6 / elapsed_us;
        arm.backend_ops =
            static_cast<double>(gauge1.ops - gauge0.ops) / n;
        arm.eff_qd = gauge1.meanDepthSince(gauge0);
        arm.deduped = delta.ios_deduped;
        storage::setSingleFlightEnabled(true);
    };

    DedupArm off_arm, on_arm;
    off_arm.label = "off";
    on_arm.label = "on";
    dedupArm(false, off_arm);
    dedupArm(true, on_arm);

    TextTable dedup_table(
        "cross-query single-flight dedup (8-way micro-batch of the "
        "same queries, sync demand path, cache=1 MiB)");
    dedup_table.setHeader({"single-flight", "QPS", "backend ops/q",
                           "eff QD", "ios deduped"});
    for (const DedupArm *arm : {&off_arm, &on_arm})
        dedup_table.addRow({arm->label, formatDouble(arm->qps, 0),
                            formatDouble(arm->backend_ops, 1),
                            formatDouble(arm->eff_qd, 2),
                            std::to_string(arm->deduped)});
    dedup_table.print(std::cout);

    const double dedup_ratio =
        off_arm.backend_ops / std::max(on_arm.backend_ops, 1e-9);
    const double min_dedup = [] {
        const char *env = std::getenv("ANN_ASYNC_MIN_DEDUP");
        return env != nullptr ? std::atof(env) : 1.1;
    }();
    std::cout << "single-flight backend-I/O reduction: "
              << formatDouble(dedup_ratio, 2) << "x (gate >= "
              << formatDouble(min_dedup, 2) << "x), "
              << on_arm.deduped << " reads deduped\n";
    if (dedup_ratio < min_dedup) {
        std::cerr << "FAIL: single-flight dedupes too little\n";
        ok = false;
    }
    if (on_arm.deduped == 0) {
        std::cerr << "FAIL: single-flight never deduped a read\n";
        ok = false;
    }

    const std::string json_path =
        core::resultsDir() + "/BENCH_async.json";
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"dataset\": \"%s\",\n"
                     "  \"queries\": %zu,\n"
                     "  \"sim_latency_us\": %u,\n"
                     "  \"points\": [\n",
                     skew.name.c_str(), skew.num_queries,
                     sim_latency_us);
        const AsyncPoint *arms[] = {&sync_point, &async_point};
        for (std::size_t i = 0; i < 2; ++i) {
            const AsyncPoint &p = *arms[i];
            std::fprintf(
                f,
                "    {\"mode\": \"%s\", \"qps\": %.1f, "
                "\"mean_us\": %.1f, \"p99_us\": %.1f, "
                "\"hop_reads_per_query\": %.2f, "
                "\"ios_per_query\": %.2f, "
                "\"eff_queue_depth\": %.3f, \"recall\": %.4f}%s\n",
                p.label, p.qps, p.mean_us, p.p99_us, p.hop_reads,
                p.backend_ops, p.eff_qd, p.recall,
                i + 1 < 2 ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"speedup\": %.3f,\n"
                     "  \"min_speedup_gate\": %.2f,\n"
                     "  \"bit_identical\": %s,\n"
                     "  \"dedup\": {\"threads\": %zu, "
                     "\"backend_ops_per_query_off\": %.2f, "
                     "\"backend_ops_per_query_on\": %.2f, "
                     "\"eff_queue_depth_off\": %.3f, "
                     "\"eff_queue_depth_on\": %.3f, "
                     "\"ios_deduped\": %llu, \"ratio\": %.3f, "
                     "\"min_dedup_gate\": %.2f}\n}\n",
                     speedup, min_speedup,
                     identical ? "true" : "false", kThreads,
                     off_arm.backend_ops, on_arm.backend_ops,
                     off_arm.eff_qd, on_arm.eff_qd,
                     static_cast<unsigned long long>(on_arm.deduped),
                     dedup_ratio, min_dedup);
        std::fclose(f);
        std::cout << "wrote " << json_path << "\n";
    } else {
        std::cerr << "FAIL: cannot write " << json_path << "\n";
        ok = false;
    }
    return ok;
}

/**
 * Replace @p data's query set with a burst: fresh samples around one
 * base vector (a trending item), each with exact brute-force ground
 * truth. Distinct queries, one hot graph region — high-d distance
 * concentration makes "the nearest existing queries" span many
 * clusters, so sampling is the only way to actually get locality.
 */
void
makeBurstQueries(workload::Dataset &data, std::size_t gt_k,
                 float spread, std::uint64_t seed)
{
    const std::size_t nq = data.num_queries;
    const float *anchor = data.base.data() +
                          std::size_t{data.ground_truth[0][0]} *
                              data.dim;
    Rng rng(seed);
    std::vector<float> queries(nq * data.dim);
    std::vector<std::vector<VectorId>> truth(nq);
    std::vector<std::pair<float, VectorId>> dists(data.rows);
    for (std::size_t q = 0; q < nq; ++q) {
        float *dst = queries.data() + q * data.dim;
        for (std::size_t d = 0; d < data.dim; ++d)
            dst[d] = anchor[d] +
                     0.5f * spread *
                         static_cast<float>(rng.nextGaussian());
        for (std::size_t v = 0; v < data.rows; ++v)
            dists[v] = {l2DistanceSq(dst,
                                     data.base.data() + v * data.dim,
                                     data.dim),
                        static_cast<VectorId>(v)};
        std::partial_sort(dists.begin(),
                          dists.begin() +
                              static_cast<std::ptrdiff_t>(gt_k),
                          dists.end());
        truth[q].reserve(gt_k);
        for (std::size_t i = 0; i < gt_k; ++i)
            truth[q].push_back(dists[i].second);
    }
    data.queries = std::move(queries);
    data.ground_truth = std::move(truth);
}

/** One arm of the phase-6 memory-budget (DRAM-free) A/B. */
struct DramFreePoint
{
    const char *label = "";
    std::size_t resident_bytes = 0; ///< index.memoryBytes()
    double ios_per_query = 0.0;     ///< backend read ops (gauge delta)
    double recall = 0.0;
    double qps = 0.0;
    std::uint64_t code_lookups = 0;
    std::uint64_t code_hits = 0;
};

/**
 * Measure one residency arm under the phase-3 discipline: cold
 * start, the first half of the query set warms the caches, the
 * second half is measured. I/O is counted at the gauge so the
 * spilled arm's code-store reads are charged alongside the graph
 * reads. @p results receives the measured-half results for the
 * bit-identity gate.
 */
void
dramFreeSweepPoint(DiskAnnIndex &index, const workload::Dataset &data,
                   DramFreePoint &point,
                   std::vector<SearchResult> *results)
{
    index.dropNodeCache();
    DiskAnnSearchParams params;
    params.search_list = 64;
    params.beam_width = 4;

    const std::size_t warmup = data.num_queries / 2;
    for (std::size_t q = 0; q < warmup; ++q)
        (void)index.search(data.query(q), params);

    const storage::NodeCacheStats code_before =
        index.codeCacheStats();
    const storage::IoGaugeSnapshot gauge_before =
        storage::ioGaugeSnapshot();
    double recall_sum = 0.0;
    const double start = nowUs();
    for (std::size_t q = warmup; q < data.num_queries; ++q) {
        const SearchResult result = index.search(data.query(q),
                                                 params);
        recall_sum +=
            recallAtK(data.ground_truth[q], result, params.k);
        if (results != nullptr)
            results->push_back(result);
    }
    const double elapsed_us = nowUs() - start;
    const auto nq = static_cast<double>(data.num_queries - warmup);

    point.resident_bytes = index.memoryBytes();
    point.ios_per_query =
        static_cast<double>(storage::ioGaugeSnapshot().ops -
                            gauge_before.ops) /
        nq;
    const storage::NodeCacheStats code_delta =
        index.codeCacheStats() - code_before;
    point.code_lookups = code_delta.lookups;
    point.code_hits = code_delta.hits;
    point.recall = recall_sum / nq;
    point.qps = nq * 1e6 / elapsed_us;
}

/**
 * Phase 6: the memory-budget (DRAM-free) A/B. One index, built with
 * each record carrying its neighbours' PQ codes, served twice on
 * the real file backend: unconstrained (codes DRAM-resident) and
 * under $ANN_MEM_BUDGET_MB-style pressure (codes spilled to the
 * sector-aligned code file, fronted by the code-page cache; in-beam
 * neighbours re-score from the embedded copies at zero extra I/O).
 * Gates: bit-identical top-k, resident bytes down by
 * >= $ANN_DRAMFREE_MIN_RESIDENT_REDUCTION (default 4x), backend
 * reads per query up by <= $ANN_DRAMFREE_MAX_IO_RATIO (default
 * 1.3x), and a nonzero code-cache hit count in the spilled arm.
 * Writes results/BENCH_dramfree.json.
 */
bool
runDramFreePhase(std::size_t num_queries, std::uint64_t seed)
{
    bool ok = true;

    // The phase owns its workload ($ANN_DRAMFREE_ROWS scales it) so
    // its embedded-code index never perturbs the other phases' I/O
    // characteristics.
    workload::GeneratorSpec spec;
    spec.name = "dramfree-burst";
    spec.rows = static_cast<std::size_t>(
        envInt("ANN_DRAMFREE_ROWS", 6000));
    spec.dim = 128;
    spec.num_queries = num_queries;
    spec.clusters = 16;
    spec.zipf_s = 0.0;
    spec.spread = 0.22f;
    spec.gt_k = 16;
    spec.seed = seed;
    workload::Dataset skew = workload::generateDataset(spec);
    makeBurstQueries(skew, spec.gt_k, spec.spread,
                     seed ^ 0xd7a3f7eeULL);

    // Embedding appends 48 m=64 neighbour codes (3 KiB) to each 708
    // byte record — one record per sector instead of five, the disk
    // cost of DRAM-free codes. ksub=16 keeps the (always-resident)
    // codebooks small relative to the code array, which is what the
    // residency gate measures.
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 48;
    build.graph.build_list = 128;
    build.pq.m = 64;
    build.pq.ksub = 16;
    build.layout = LayoutPolicy::PackedBfs;
    build.embed_codes = true;
    index.build(skew.baseView(), build);
    if (index.embeddedCodeBytes() == 0) {
        std::cerr << "FAIL: PQ codes did not embed in sector slack\n";
        ok = false;
    }

    storage::IoOptions io;
    io.kind = storage::IoBackendKind::File;
    io.queue_depth = 16;

    // Resident arm: real storage for the graph, codes in DRAM.
    DramFreePoint resident;
    resident.label = "resident";
    std::vector<SearchResult> resident_results;
    index.setIoMode(io);
    ANN_CHECK(index.codesResident(),
              "no budget must leave codes resident");
    const std::size_t resident_bytes = index.memoryBytes();
    // codebooks = memoryBytes - code array; the budget keeps them
    // plus a small code-page cache.
    const std::size_t code_bytes = skew.rows * build.pq.m;
    ANN_CHECK(resident_bytes > code_bytes, "sizing inconsistency");
    const std::size_t codebook_bytes = resident_bytes - code_bytes;
    dramFreeSweepPoint(index, skew, resident, &resident_results);

    // Spilled arm: same backend, budget = codebooks + a 64 KiB
    // code-page cache. The cache only has to absorb the per-query
    // medoid/entry fetches — in-beam rescoring reads the embedded
    // copies — so it can sit far below the code array.
    DramFreePoint spilled;
    spilled.label = "spilled";
    std::vector<SearchResult> spilled_results;
    storage::IoOptions budget_io = io;
    budget_io.mem_budget_bytes = codebook_bytes + 64 * 1024;
    index.setIoMode(budget_io);
    ANN_CHECK(!index.codesResident(),
              "budget below the code array must spill");
    dramFreeSweepPoint(index, skew, spilled, &spilled_results);

    bool identical =
        resident_results.size() == spilled_results.size();
    for (std::size_t q = 0; identical && q < resident_results.size();
         ++q) {
        const SearchResult &a = resident_results[q];
        const SearchResult &b = spilled_results[q];
        if (a.size() != b.size()) {
            identical = false;
            break;
        }
        for (std::size_t i = 0; i < a.size(); ++i)
            if (a[i].id != b[i].id ||
                a[i].distance != b[i].distance)
                identical = false;
    }
    std::cout << "spilled vs resident top-k bit-identical: "
              << (identical ? "yes" : "NO") << "\n";
    if (!identical) {
        std::cerr << "FAIL: memory budget changed search results\n";
        ok = false;
    }

    TextTable table("memory-budget A/B (file backend, packed-BFS, "
                    "embedded codes, search_list=64, beam=4)");
    table.setHeader({"arm", "resident KiB", "IOs/query",
                     "code hit %", "recall@10", "QPS"});
    for (const DramFreePoint *p : {&resident, &spilled})
        table.addRow(
            {p->label, std::to_string(p->resident_bytes / 1024),
             formatDouble(p->ios_per_query, 1),
             p->code_lookups > 0
                 ? formatDouble(100.0 *
                                    static_cast<double>(p->code_hits) /
                                    static_cast<double>(
                                        p->code_lookups),
                                1)
                 : "-",
             formatDouble(p->recall, 3), formatDouble(p->qps, 0)});
    table.print(std::cout);

    const double reduction =
        static_cast<double>(resident.resident_bytes) /
        std::max<double>(
            static_cast<double>(spilled.resident_bytes), 1.0);
    const double min_reduction = [] {
        const char *env =
            std::getenv("ANN_DRAMFREE_MIN_RESIDENT_REDUCTION");
        return env != nullptr ? std::atof(env) : 4.0;
    }();
    const double io_ratio =
        spilled.ios_per_query /
        std::max(resident.ios_per_query, 1e-9);
    const double max_io_ratio = [] {
        const char *env = std::getenv("ANN_DRAMFREE_MAX_IO_RATIO");
        return env != nullptr ? std::atof(env) : 1.3;
    }();
    std::cout << "resident-bytes reduction: "
              << formatDouble(reduction, 2) << "x (gate >= "
              << formatDouble(min_reduction, 2)
              << "x); IOs/query ratio: " << formatDouble(io_ratio, 3)
              << " (gate <= " << formatDouble(max_io_ratio, 2)
              << ")\n";
    if (reduction < min_reduction) {
        std::cerr << "FAIL: budget frees too little DRAM\n";
        ok = false;
    }
    if (io_ratio > max_io_ratio) {
        std::cerr << "FAIL: spilled codes cost too much extra I/O\n";
        ok = false;
    }
    if (spilled.code_hits == 0) {
        std::cerr << "FAIL: code-page cache never served a hit\n";
        ok = false;
    }

    // Leave the index unconstrained again (it is phase-local, but
    // the discipline mirrors how setIoMode unspills on migration).
    index.setIoMode(io);

    const std::string json_path =
        core::resultsDir() + "/BENCH_dramfree.json";
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"dataset\": \"%s\",\n"
                     "  \"queries\": %zu,\n"
                     "  \"embedded_code_bytes\": %zu,\n"
                     "  \"mem_budget_bytes\": %zu,\n"
                     "  \"points\": [\n",
                     skew.name.c_str(), skew.num_queries,
                     index.embeddedCodeBytes(),
                     budget_io.mem_budget_bytes);
        const DramFreePoint *arms[] = {&resident, &spilled};
        for (std::size_t i = 0; i < 2; ++i) {
            const DramFreePoint &p = *arms[i];
            std::fprintf(
                f,
                "    {\"arm\": \"%s\", \"resident_bytes\": %zu, "
                "\"ios_per_query\": %.2f, "
                "\"code_cache_lookups\": %llu, "
                "\"code_cache_hits\": %llu, "
                "\"recall\": %.4f, \"qps\": %.1f}%s\n",
                p.label, p.resident_bytes, p.ios_per_query,
                static_cast<unsigned long long>(p.code_lookups),
                static_cast<unsigned long long>(p.code_hits),
                p.recall, p.qps, i + 1 < 2 ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"resident_reduction\": %.3f,\n"
                     "  \"min_resident_reduction_gate\": %.2f,\n"
                     "  \"io_ratio\": %.3f,\n"
                     "  \"max_io_ratio_gate\": %.2f,\n"
                     "  \"bit_identical\": %s\n}\n",
                     reduction, min_reduction, io_ratio,
                     max_io_ratio, identical ? "true" : "false");
        std::fclose(f);
        std::cout << "wrote " << json_path << "\n";
    } else {
        std::cerr << "FAIL: cannot write " << json_path << "\n";
        ok = false;
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    bool drop_caches = false;
    bool layout_only = false;
    bool learned_only = false;
    bool no_learned = false;
    bool async_only = false;
    bool no_async = false;
    bool dramfree_only = false;
    bool no_dramfree = false;
    // Workload seed: --seed beats $ANN_SEED beats the historical
    // default (which reproduces the pre-seeding byte streams).
    std::uint64_t seed = static_cast<std::uint64_t>(
        envInt("ANN_SEED", 0x1a10075));
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--drop-caches") == 0)
            drop_caches = true;
        if (std::strcmp(argv[i], "--layout-only") == 0)
            layout_only = true;
        if (std::strcmp(argv[i], "--learned-only") == 0)
            learned_only = true;
        if (std::strcmp(argv[i], "--no-learned") == 0)
            no_learned = true;
        if (std::strcmp(argv[i], "--async-only") == 0)
            async_only = true;
        if (std::strcmp(argv[i], "--no-async") == 0)
            no_async = true;
        if (std::strcmp(argv[i], "--dramfree-only") == 0)
            dramfree_only = true;
        if (std::strcmp(argv[i], "--no-dramfree") == 0)
            no_dramfree = true;
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = std::strtoull(argv[++i], nullptr, 0);
    }
    if (async_only) {
        layout_only = true; // skip phases 1-2
        no_learned = true;
    }
    if (dramfree_only) {
        layout_only = true; // skip phases 1-2
        no_learned = true;
        no_async = true;
    }
    if (learned_only)
        layout_only = true; // skip phases 1-2 as well
    // Phase 5 runs in the full sweep and under --async-only; the
    // focused phase-3/4 smokes keep their historical scope. Phase 6
    // mirrors phase 5: full sweep and --dramfree-only.
    const bool run_async =
        async_only && !dramfree_only
            ? true
            : (!layout_only && !learned_only && !no_async);
    const bool run_dramfree =
        dramfree_only ||
        (!layout_only && !learned_only && !async_only &&
         !no_dramfree);
    core::printBenchHeader(
        "Extension: real-I/O backends (pread vs io_uring)",
        "expected: uring IOPS scale with queue depth; batched async "
        "beam fetches beat serial single-sector pread by >= 2x at "
        "beam_width >= 4");

    const bool have_uring = storage::uringSupported();
    if (!have_uring)
        std::cout << "note: io_uring unavailable here — uring rows "
                     "fall back to the file backend\n\n";

    // ---------------------------------------------- raw random reads
    if (!layout_only) {
        const std::size_t raw_sectors = 16384; // 64 MiB spill file
        std::vector<std::uint8_t> image(raw_sectors *
                                        storage::kIoSectorBytes);
        Rng fill(7);
        for (auto &byte : image)
            byte = static_cast<std::uint8_t>(fill.next() & 0xff);

        TextTable raw_table("random 4 KiB reads, 64-request batches "
                            "(64 MiB O_DIRECT file)");
        raw_table.setHeader({"queue depth", "file kIOPS",
                             "file P99 (us)", "uring kIOPS",
                             "uring P99 (us)"});
        const std::size_t rounds = 200;
        double uring_kiops_qd1 = 0.0, uring_kiops_best = 0.0;
        for (const unsigned qd : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            auto file_backend =
                spillBackend(storage::IoBackendKind::File, image, qd);
            const RawPoint file_point =
                rawSweepPoint(*file_backend, 64, rounds);
            auto uring_backend =
                spillBackend(storage::IoBackendKind::Uring, image, qd);
            const RawPoint uring_point =
                rawSweepPoint(*uring_backend, 64, rounds);
            if (qd == 1)
                uring_kiops_qd1 = uring_point.kiops;
            uring_kiops_best =
                std::max(uring_kiops_best, uring_point.kiops);
            raw_table.addRow(
                {std::to_string(qd),
                 formatDouble(file_point.kiops, 1),
                 formatDouble(file_point.batch_p99_us, 1),
                 formatDouble(uring_point.kiops, 1),
                 formatDouble(uring_point.batch_p99_us, 1)});
        }
        raw_table.print(std::cout);
        std::cout << "queue-depth scaling (uring best/qd1): "
                  << formatDouble(uring_kiops_best /
                                      std::max(uring_kiops_qd1, 1e-9),
                                  2)
                  << "x\n\n";
    }

    // ------------------------------------------------- beam search
    const auto dataset = bench::benchDataset("cohere-1m");
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 64;
    build.graph.build_list = 128;
    build.pq.m = dataset.dim;
    build.pq.ksub = 256;
    build.layout = LayoutPolicy::IdOrder;
    if (!layout_only)
        index.build(dataset.baseView(), build);

    struct Mode
    {
        const char *label;
        storage::IoOptions options;
    };
    // Real modes pick up the node cache from the environment so this
    // sweep can run cached and uncached without a rebuild.
    const storage::NodeCacheConfig node_cache =
        storage::NodeCacheConfig::fromEnv();
    std::vector<Mode> modes;
    if (!layout_only) {
        Mode memory{"memory", {}};
        modes.push_back(memory);
        Mode serial{"pread serial (qd=1)", {}};
        serial.options.kind = storage::IoBackendKind::File;
        serial.options.queue_depth = 1;
        serial.options.node_cache = node_cache;
        modes.push_back(serial);
        Mode overlap{"pread overlapped (qd=32)", {}};
        overlap.options.kind = storage::IoBackendKind::File;
        overlap.options.queue_depth = 32;
        overlap.options.node_cache = node_cache;
        modes.push_back(overlap);
        Mode uring{"io_uring (qd=32)", {}};
        uring.options.kind = storage::IoBackendKind::Uring;
        uring.options.queue_depth = 32;
        uring.options.node_cache = node_cache;
        modes.push_back(uring);
    }

    TextTable search_table("DiskANN beam search per backend (" +
                           dataset.name + ", search_list=64)");
    search_table.setHeader({"backend", "beam", "QPS", "mean (us)",
                            "P99 (us)"});
    // mean latency per (beam, mode); beams 4 and 8 feed the summary.
    std::map<std::size_t, double> serial_mean, batched_best_mean;
    for (const Mode &mode : modes) { // empty under --layout-only
        index.setIoMode(mode.options);
        for (const std::size_t beam : {1u, 2u, 4u, 8u}) {
            if (drop_caches)
                index.dropNodeCache();
            DiskAnnSearchParams params;
            params.search_list = 64;
            params.beam_width = beam;
            const SearchPoint point =
                searchSweepPoint(index, dataset, params);
            if (std::strcmp(mode.label, "pread serial (qd=1)") == 0) {
                serial_mean[beam] = point.mean_us;
            } else if (std::strcmp(mode.label, "memory") != 0) {
                auto it = batched_best_mean.find(beam);
                if (it == batched_best_mean.end() ||
                    point.mean_us < it->second)
                    batched_best_mean[beam] = point.mean_us;
            }
            search_table.addRow({mode.label, std::to_string(beam),
                                 formatDouble(point.qps, 0),
                                 formatDouble(point.mean_us, 1),
                                 formatDouble(point.p99_us, 1)});
        }
    }
    if (!layout_only) {
        search_table.print(std::cout);
        search_table.writeCsv(core::resultsDir() +
                              "/ext_real_io.csv");

        for (const std::size_t beam :
             {std::size_t{4}, std::size_t{8}}) {
            const auto serial_it = serial_mean.find(beam);
            const auto batched_it = batched_best_mean.find(beam);
            if (serial_it == serial_mean.end() ||
                batched_it == batched_best_mean.end())
                continue;
            std::cout
                << "batched async vs serial pread at beam_width="
                << beam << ": "
                << formatDouble(serial_it->second /
                                    batched_it->second,
                                2)
                << "x\n";
        }
        std::cout << "shape check: serial pread pays one device "
                     "round-trip per beam slot;\nthe batched "
                     "backends pay ~one per hop, so the gap widens "
                     "with beam_width.\n\n";
    }

    // --------------------- layout sweep + learned A/B (phases 3-4)

    // Layout matters when queries have locality: serving traffic
    // concentrates on a topic at a time (a burst), while the base
    // stays broad — the hot graph region is then a small fraction of
    // the index and can re-fit in a small cache. Generate a clustered
    // dataset, then keep only the half of its query set nearest an
    // anchor query: distinct queries, one hot topic.
    workload::GeneratorSpec skew_spec;
    skew_spec.name = "layout-burst";
    skew_spec.rows = dataset.rows;
    skew_spec.dim = dataset.dim;
    skew_spec.num_queries = dataset.num_queries;
    skew_spec.clusters = 16;
    skew_spec.zipf_s = 0.0;
    skew_spec.spread = 0.22f;
    skew_spec.gt_k = 16;
    skew_spec.seed = seed;
    std::cout << "burst workload seed: 0x" << std::hex << seed
              << std::dec << "\n";
    workload::Dataset skew = workload::generateDataset(skew_spec);
    // Seed derived so the default reproduces the historical 0xb0057
    // query stream exactly.
    makeBurstQueries(skew, skew_spec.gt_k, skew_spec.spread,
                     seed ^ (0x1a10075ULL ^ 0xb0057ULL));

    // Shared by phases 3-5: the id-order index over the burst data.
    // Phase 3 adds its packed-BFS twin internally; phase 6 builds its
    // own embedded-code index, so a dramfree-only run skips this.
    DiskAnnIndex id_index;
    if (!dramfree_only)
        id_index.build(skew.baseView(), build);

    bool ok = true;
    if (!learned_only && !async_only && !dramfree_only)
        ok = runLayoutPhase(id_index, build, skew, dataset) && ok;
    if (!no_learned)
        ok = runLearnedPhase(id_index, skew, seed) && ok;
    if (run_async)
        ok = runAsyncPhase(id_index, skew) && ok;
    if (run_dramfree)
        ok = runDramFreePhase(skew.num_queries, seed) && ok;

    if (!ok) {
        std::cerr << "bench_ext_real_io: GATES FAILED\n";
        return 1;
    }
    std::cout << "bench_ext_real_io: all gates passed\n";
    return 0;
}
