/**
 * @file
 * Figure 7 — Milvus-DiskANN search throughput as search_list grows
 * from 10 to 100, at 1 and 256 client threads (O-17, O-18).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Figure 7: DiskANN throughput vs search_list",
        "paper: 10->100 costs 36.3-43.8% QPS at 1T and 51.2-60.9% at "
        "256T");

    core::BenchRunner runner(core::paperTestbed());
    const auto sweep = core::searchListSweep();

    std::map<std::string, std::map<std::size_t, double>> qps1, qps256;
    for (const std::size_t threads : {1u, 256u}) {
        TextTable table("Fig. 7: QPS at " + std::to_string(threads) +
                        " thread(s)");
        std::vector<std::string> header{"dataset"};
        for (auto sl : sweep)
            header.push_back("L=" + std::to_string(sl));
        table.setHeader(header);

        for (const auto &dataset_name : workload::paperDatasetNames()) {
            const auto dataset = bench::benchDataset(dataset_name);
            auto prepared =
                bench::prepareTuned("milvus-diskann", dataset);
            std::vector<std::string> row{dataset_name};
            for (auto sl : sweep) {
                auto settings = prepared.settings;
                settings.search_list = sl;
                const auto m = runner.measure(*prepared.engine, dataset,
                                              settings, threads);
                row.push_back(core::fmtQps(m.replay));
                (threads == 1 ? qps1 : qps256)[dataset_name][sl] =
                    m.replay.qps;
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        table.writeCsv(core::resultsDir() + "/fig7_" +
                       std::to_string(threads) + "t.csv");
    }

    std::cout << "\nshape checks (paper expectation -> measured):\n";
    for (const auto &ds : workload::paperDatasetNames()) {
        const double drop1 = 1.0 - qps1[ds][100] / qps1[ds][10];
        const double drop256 = 1.0 - qps256[ds][100] / qps256[ds][10];
        std::cout << "  [" << ds << "] O-17 1T QPS drop 10->100: "
                  << formatDouble(drop1 * 100.0, 1)
                  << "% (paper: 36.3-43.8%); O-18 256T drop: "
                  << formatDouble(drop256 * 100.0, 1)
                  << "% (paper: 51.2-60.9%)\n";
    }
    return 0;
}
