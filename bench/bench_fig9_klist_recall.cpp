/**
 * @file
 * Figure 9 — Milvus-DiskANN recall@10 as search_list grows from 10
 * to 100 (O-16: diminishing returns; biggest gain from 10 to 20).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Figure 9: DiskANN recall@10 vs search_list",
        "paper: +1.0-4.3% from 10->20, +2.0-6.5% total from 10->100; "
        "diminishing returns (O-16)");

    core::BenchRunner runner(core::paperTestbed());
    const auto sweep = core::searchListSweep();

    TextTable table("Fig. 9: recall@10");
    std::vector<std::string> header{"dataset"};
    for (auto sl : sweep)
        header.push_back("L=" + std::to_string(sl));
    table.setHeader(header);

    std::map<std::string, std::map<std::size_t, double>> recall;
    for (const auto &dataset_name : workload::paperDatasetNames()) {
        const auto dataset = bench::benchDataset(dataset_name);
        auto prepared = bench::prepareTuned("milvus-diskann", dataset);
        std::vector<std::string> row{dataset_name};
        for (auto sl : sweep) {
            auto settings = prepared.settings;
            settings.search_list = sl;
            const auto &traces =
                runner.traces(*prepared.engine, dataset, settings);
            row.push_back(core::fmtRecall(traces.recall));
            recall[dataset_name][sl] = traces.recall;
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    table.writeCsv(core::resultsDir() + "/fig9_klist_recall.csv");

    std::cout << "\nshape checks:\n";
    for (const auto &ds : workload::paperDatasetNames()) {
        const double gain_20 = recall[ds][20] - recall[ds][10];
        const double gain_100 = recall[ds][100] - recall[ds][10];
        std::cout << "  [" << ds << "] O-16 gain 10->20: "
                  << formatDouble(gain_20 * 100.0, 1)
                  << "pp (paper: 1.0-4.3), 10->100: "
                  << formatDouble(gain_100 * 100.0, 1)
                  << "pp (paper: 2.0-6.5); first step should dominate\n";
    }
    return 0;
}
