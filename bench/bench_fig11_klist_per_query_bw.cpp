/**
 * @file
 * Figure 11 — per-query average read traffic of Milvus-DiskANN as
 * search_list grows, at 1 and 256 threads (O-20: x5.1-6.3 at 1T,
 * x4.9-5.4 at 256T from 10->100).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Figure 11: DiskANN per-query read traffic vs search_list",
        "paper: x5.1-6.3 at 1T and x4.9-5.4 at 256T from 10->100");

    core::BenchRunner runner(core::paperTestbed());
    const auto sweep = core::searchListSweep();

    std::map<std::size_t,
             std::map<std::string, std::map<std::size_t, double>>>
        mib; // [threads][dataset][search_list]

    for (const std::size_t threads : {1u, 256u}) {
        TextTable table("Fig. 11: read MiB per query at " +
                        std::to_string(threads) + " thread(s)");
        std::vector<std::string> header{"dataset"};
        for (auto sl : sweep)
            header.push_back("L=" + std::to_string(sl));
        table.setHeader(header);

        for (const auto &dataset_name : workload::paperDatasetNames()) {
            const auto dataset = bench::benchDataset(dataset_name);
            auto prepared =
                bench::prepareTuned("milvus-diskann", dataset);
            std::vector<std::string> row{dataset_name};
            for (auto sl : sweep) {
                auto settings = prepared.settings;
                settings.search_list = sl;
                const auto m = runner.measure(*prepared.engine, dataset,
                                              settings, threads);
                const double per_query =
                    static_cast<double>(m.replay.read_bytes) /
                    (1024.0 * 1024.0) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, m.replay.completed));
                row.push_back(formatDouble(per_query, 3));
                mib[threads][dataset_name][sl] = per_query;
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        table.writeCsv(core::resultsDir() + "/fig11_" +
                       std::to_string(threads) + "t.csv");
    }

    std::cout << "\nshape checks:\n";
    for (const auto &ds : workload::paperDatasetNames()) {
        std::cout << "  [" << ds << "] per-query traffic 10->100: x"
                  << formatDouble(mib[1][ds][100] / mib[1][ds][10], 2)
                  << " at 1T (paper: 5.1-6.3x), x"
                  << formatDouble(mib[256][ds][100] / mib[256][ds][10],
                                  2)
                  << " at 256T (paper: 4.9-5.4x)\n";
    }
    return 0;
}
