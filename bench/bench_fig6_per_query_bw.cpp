/**
 * @file
 * Figure 6 + O-15 — per-query average read traffic of Milvus-DiskANN
 * at concurrency 1 vs 256 on the four datasets, and the request-size
 * distribution showing >99.99% 4 KiB reads.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"
#include "storage/trace_analysis.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Figure 6: per-query average read traffic of Milvus-DiskANN",
        "paper: per-query traffic x8.4-10.1 when dataset x10 (O-14); "
        ">99.99% of requests are 4 KiB (O-15)");

    core::BenchRunner runner(core::paperTestbed());

    TextTable table("Fig. 6: read MiB per query");
    table.setHeader({"dataset", "1 thread", "256 threads",
                     "4KiB read fraction"});

    std::map<std::string, double> per_query_1t;
    for (const auto &dataset_name : workload::paperDatasetNames()) {
        const auto dataset = bench::benchDataset(dataset_name);
        auto prepared = bench::prepareTuned("milvus-diskann", dataset);

        const auto m1 = runner.measure(*prepared.engine, dataset,
                                       prepared.settings, 1, true);
        const auto m256 = runner.measure(*prepared.engine, dataset,
                                         prepared.settings, 256, true);
        const double q1 =
            static_cast<double>(m1.replay.read_bytes) /
            (1024.0 * 1024.0) /
            static_cast<double>(std::max<std::uint64_t>(
                1, m1.replay.completed));
        const double q256 =
            static_cast<double>(m256.replay.read_bytes) /
            (1024.0 * 1024.0) /
            static_cast<double>(std::max<std::uint64_t>(
                1, m256.replay.completed));
        per_query_1t[dataset_name] = q1;

        const auto summary = storage::summarizeTrace(m256.replay.trace);
        table.addRow({dataset_name, formatDouble(q1, 3),
                      formatDouble(q256, 3),
                      formatDouble(summary.fraction_4k_reads * 100.0,
                                   3) +
                          "%"});
    }
    table.print(std::cout);
    table.writeCsv(core::resultsDir() + "/fig6_per_query_bw.csv");

    std::cout << "\nshape checks (paper expectation -> measured):\n";
    for (const auto &small : workload::smallDatasetNames()) {
        const auto large = workload::scaledPartner(small);
        std::cout << "  O-14 per-query traffic x"
                  << formatDouble(per_query_1t[large] /
                                      per_query_1t[small],
                                  1)
                  << " when " << small << " -> " << large
                  << " (paper: 8.4x / 10.1x)\n";
    }
    std::cout << "  O-15: the 4 KiB fraction above should read "
                 ">99.99% on every dataset\n";
    return 0;
}
