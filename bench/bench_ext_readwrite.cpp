/**
 * @file
 * Extension (paper SS VIII) — hybrid read/write workloads.
 *
 * The paper's future work: "NAND SSDs have read-write interference,
 * meaning that the read throughput decreases and the latency
 * increases with concurrent writes." This bench runs the
 * Milvus-DiskANN search workload while FreshDiskANN-style ingest
 * clients stream inserts (PQ encode + delta-graph insert on CPU,
 * merge writes to the SSD), sweeping the number of ingest clients.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"
#include "engine/milvus_like.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Extension (SS VIII): search under concurrent ingestion",
        "expected: search P99 rises and QPS falls as ingest writes "
        "share the SSD (NAND read-write interference)");

    core::BenchRunner runner(core::paperTestbed());
    const std::size_t search_clients = 32;
    const std::size_t ingest_batch = 2000;

    for (const auto &dataset_name : workload::largeDatasetNames()) {
        const auto dataset = bench::benchDataset(dataset_name);
        auto prepared = bench::prepareTuned("milvus-diskann", dataset);
        auto *milvus = dynamic_cast<engine::MilvusLikeEngine *>(
            prepared.engine.get());

        const auto &workload_traces = runner.traces(
            *prepared.engine, dataset, prepared.settings);

        std::vector<engine::QueryTrace> ingest;
        for (int i = 0; i < 16; ++i)
            ingest.push_back(milvus->buildIngestTrace(ingest_batch));

        TextTable table("read/write interference (" + dataset_name +
                        "), " + std::to_string(search_clients) +
                        " search clients");
        table.setHeader({"ingest clients", "search QPS", "P99 (us)",
                         "read MiB/s", "write MiB/s", "inserts/s"});

        double baseline_qps = 0.0, baseline_p99 = 0.0;
        for (const std::size_t writers : {0u, 1u, 2u, 4u, 8u, 16u}) {
            core::ReplayConfig config = runner.baseConfig();
            config.client_threads = search_clients;
            const auto result = core::replayMixedWorkload(
                workload_traces.traces, ingest, writers,
                prepared.engine->profile(), config);
            if (writers == 0) {
                baseline_qps = result.qps;
                baseline_p99 = result.p99_latency_us;
            }
            const double inserts_per_s =
                static_cast<double>(result.ingest_completed) *
                ingest_batch /
                (static_cast<double>(config.duration_ns) / 1e9);
            table.addRow({std::to_string(writers),
                          formatDouble(result.qps, 0),
                          formatDouble(result.p99_latency_us, 0),
                          core::fmtMib(result.read_bw_mib),
                          core::fmtMib(result.write_bw_mib),
                          formatDouble(inserts_per_s, 0)});
            if (writers == 16) {
                std::cout << "  [" << dataset_name
                          << "] 16 ingest clients cost "
                          << formatDouble(
                                 (1.0 - result.qps / baseline_qps) *
                                     100.0,
                                 1)
                          << "% search QPS and raise P99 by "
                          << formatDouble(
                                 (result.p99_latency_us /
                                      baseline_p99 -
                                  1.0) *
                                     100.0,
                                 1)
                          << "%\n";
            }
        }
        table.print(std::cout);
        table.writeCsv(core::resultsDir() + "/ext_readwrite_" +
                       dataset_name + ".csv");
    }
    return 0;
}
