/**
 * @file
 * Shared plumbing for the per-figure bench binaries: dataset loading,
 * engine preparation with Table-II-style tuned parameters, and the
 * parameter-sharing rules the paper applies across databases.
 */

#ifndef ANN_BENCH_BENCH_COMMON_HH
#define ANN_BENCH_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "common/env.hh"
#include "core/bench_runner.hh"
#include "core/experiments.hh"
#include "distance/recall.hh"
#include "core/tuner.hh"
#include "engine/engine.hh"
#include "workload/registry.hh"

namespace ann::bench {

/** An engine prepared on a dataset with its tuned search settings. */
struct PreparedSetup
{
    std::unique_ptr<engine::VectorDbEngine> engine;
    engine::SearchSettings settings;
    /** recall@10 achieved by the tuned settings (Table II "acc"). */
    double recall = 0.0;
};

/**
 * Load a registered dataset, truncating the query set to
 * $ANN_BENCH_QUERIES (default 500) to bound trace-building time.
 * Ground truth rows are truncated consistently.
 */
inline workload::Dataset
benchDataset(const std::string &name)
{
    workload::Dataset dataset = workload::loadOrGenerate(name);
    const auto limit = static_cast<std::size_t>(
        envInt("ANN_BENCH_QUERIES", 500));
    if (limit > 0 && limit < dataset.num_queries) {
        dataset.num_queries = limit;
        dataset.queries.resize(limit * dataset.dim);
        dataset.ground_truth.resize(limit);
    }
    return dataset;
}

/**
 * Prepare @p setup on @p dataset with the paper's parameter-sharing
 * rules (SS III-C):
 *  - one efSearch is tuned per dataset and shared by every plain
 *    HNSW engine. The paper tunes on Milvus; here the tuning runs on
 *    the single-graph engine because at this reproduction's scale
 *    Milvus's small segments would make efSearch *shrink* with
 *    dataset growth (a scaling artifact the paper's 1M-row segments
 *    do not have);
 *  - LanceDB's HNSW-SQ is tuned separately (quantization hurts
 *    accuracy; Table II's "efSearch (LanceDB)" column);
 *  - LanceDB's IVF-PQ reuses the shared nprobe and reports the lower
 *    achieved accuracy, as the paper does;
 *  - DiskANN tunes search_list (minimum 10 already meets the
 *    target in the paper).
 */
inline PreparedSetup
prepareTuned(const std::string &setup, const workload::Dataset &dataset,
             double target = 0.9)
{
    PreparedSetup out;
    out.engine = core::prepareEngine(setup, dataset);

    if (setup == "qdrant-hnsw" || setup == "weaviate-hnsw" ||
        setup == "milvus-hnsw") {
        // Shared efSearch, tuned once on the single-graph engine.
        auto reference = core::prepareEngine("qdrant-hnsw", dataset);
        const auto tuned =
            core::tunedSettings(*reference, dataset, target);
        out.settings = tuned.settings;
        // Same graph algorithm and parameters -> same accuracy (the
        // segmented engine's merged recall is at least as high).
        out.recall = tuned.recall;
        return out;
    }
    if (setup == "lancedb-ivfpq") {
        auto milvus = core::prepareEngine("milvus-ivf", dataset);
        const auto tuned = core::tunedSettings(*milvus, dataset, target);
        out.settings = tuned.settings;
        // Report the achieved (lower) recall, like Table II's
        // parenthesized accuracy.
        double acc = 0.0;
        const std::size_t n =
            std::min<std::size_t>(300, dataset.num_queries);
        const auto outputs =
            core::runAllQueries(*out.engine, dataset, out.settings, n);
        for (std::size_t q = 0; q < n; ++q)
            acc += recallAtK(dataset.ground_truth[q],
                             outputs[q].results, out.settings.k);
        out.recall = acc / static_cast<double>(n);
        return out;
    }
    const auto tuned = core::tunedSettings(*out.engine, dataset, target);
    out.settings = tuned.settings;
    out.recall = tuned.recall;
    return out;
}

} // namespace ann::bench

#endif // ANN_BENCH_BENCH_COMMON_HH
