/**
 * @file
 * Extension (paper SS II) — DiskANN vs a SPANN-like cluster index.
 *
 * The paper's background contrasts the two storage-based index
 * families: cluster-based indexes "fit the access granularity" of
 * SSDs but pay replication-driven space amplification, while
 * graph-based indexes issue dependent small reads. This ablation
 * builds both over the same dataset, matches their recall, and
 * compares the I/O shapes the paper describes.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/report.hh"
#include "core/tuner.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "index/spann_index.hh"
#include "storage/ssd_model.hh"
#include "sim/simulator.hh"

namespace {

using namespace ann;

struct IoShape
{
    double recall = 0.0;
    double mib_per_query = 0.0;
    double requests_per_query = 0.0;
    double io_rounds_per_query = 0.0;
    double mean_request_kib = 0.0;
    double cold_latency_us = 0.0; // device time, 1 query, cold
};

/** Replay one query's recorded batches against a fresh device. */
double
deviceLatencyUs(const std::vector<SearchStep> &steps)
{
    sim::Simulator simulator;
    storage::SsdModel ssd(simulator,
                          storage::SsdConfig::samsung990Pro());
    SimTime total = 0;
    for (const SearchStep &step : steps) {
        if (step.reads.empty())
            continue;
        // Issue the batch in parallel; wait for the slowest.
        std::size_t outstanding = step.reads.size();
        const SimTime start = simulator.now();
        SimTime end = start;
        for (const SectorRead &read : step.reads)
            ssd.readAsync(read.sector * kSectorBytes,
                          read.count * 4096, 0, [&]() {
                              if (--outstanding == 0)
                                  end = simulator.now();
                          });
        simulator.run();
        total += end - start;
    }
    return static_cast<double>(total) / 1000.0;
}

template <typename SearchFn>
IoShape
measureShape(const workload::Dataset &data, SearchFn &&search)
{
    IoShape shape;
    std::uint64_t sectors = 0, requests = 0, rounds = 0;
    double recall = 0.0, latency = 0.0;
    const std::size_t n = data.num_queries;
    for (std::size_t q = 0; q < n; ++q) {
        SearchTraceRecorder recorder;
        const SearchResult result = search(data.query(q), recorder);
        recall += recallAtK(data.ground_truth[q], result, 10);
        for (const SearchStep &step : recorder.steps()) {
            if (step.reads.empty())
                continue;
            ++rounds;
            requests += step.reads.size();
            for (const SectorRead &read : step.reads)
                sectors += read.count;
        }
        latency += deviceLatencyUs(recorder.steps());
    }
    shape.recall = recall / static_cast<double>(n);
    shape.mib_per_query = static_cast<double>(sectors) * 4096.0 /
                          (1024.0 * 1024.0) / static_cast<double>(n);
    shape.requests_per_query =
        static_cast<double>(requests) / static_cast<double>(n);
    shape.io_rounds_per_query =
        static_cast<double>(rounds) / static_cast<double>(n);
    shape.mean_request_kib = requests
                                 ? static_cast<double>(sectors) * 4.0 /
                                       static_cast<double>(requests)
                                 : 0.0;
    shape.cold_latency_us = latency / static_cast<double>(n);
    return shape;
}

} // namespace

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Extension (SS II): DiskANN vs SPANN-like storage indexes",
        "expected: SPANN answers in one round of large sequential "
        "reads but pays replication; DiskANN reads dependent 4 KiB "
        "sectors across several rounds");

    const auto dataset = bench::benchDataset("cohere-1m");

    // DiskANN (per-sector AIO pattern, matching the engines).
    DiskAnnIndex diskann;
    DiskAnnBuildParams dbuild;
    dbuild.graph.max_degree = 64;
    dbuild.graph.build_list = 128;
    dbuild.pq.m = dataset.dim;
    dbuild.pq.ksub = 256;
    diskann.build(dataset.baseView(), dbuild);

    // SPANN-like.
    SpannIndex spann;
    SpannBuildParams sbuild;
    sbuild.nlist = engine::scaledNlist(dataset.name, dataset.rows);
    sbuild.closure_epsilon = 0.12f;
    sbuild.max_replicas = 8;
    spann.build(dataset.baseView(), sbuild);

    // Match recall: tune each index's knob to recall@10 >= 0.9.
    double dann_recall = 0.0;
    const std::size_t search_list = core::tuneMonotonic(
        [&](std::size_t value) {
            DiskAnnSearchParams params;
            params.search_list = value;
            double acc = 0.0;
            for (std::size_t q = 0; q < 200; ++q)
                acc += recallAtK(
                    dataset.ground_truth[q],
                    diskann.search(dataset.query(q), params), 10);
            return acc / 200.0;
        },
        10, 256, 0.9, &dann_recall);
    double spann_recall = 0.0;
    const std::size_t nprobe = core::tuneMonotonic(
        [&](std::size_t value) {
            SpannSearchParams params;
            params.nprobe = value;
            double acc = 0.0;
            for (std::size_t q = 0; q < 200; ++q)
                acc += recallAtK(
                    dataset.ground_truth[q],
                    spann.search(dataset.query(q), params), 10);
            return acc / 200.0;
        },
        1, spann.nlist(), 0.9, &spann_recall);

    const IoShape dann_shape = measureShape(
        dataset, [&](const float *q, SearchTraceRecorder &rec) {
            DiskAnnSearchParams params;
            params.search_list = search_list;
            auto result = diskann.search(q, params, &rec);
            // Engines split beams into per-sector AIO requests; do
            // the same here for a fair request-size comparison.
            return result;
        });
    const IoShape spann_shape = measureShape(
        dataset, [&](const float *q, SearchTraceRecorder &rec) {
            SpannSearchParams params;
            params.nprobe = nprobe;
            return spann.search(q, params, &rec);
        });

    TextTable table("storage-index shapes at recall@10 >= 0.9 (" +
                    dataset.name + ")");
    table.setHeader({"metric", "diskann (search_list=" +
                                   std::to_string(search_list) + ")",
                     "spann-like (nprobe=" + std::to_string(nprobe) +
                         ")"});
    table.addRow({"recall@10", core::fmtRecall(dann_shape.recall),
                  core::fmtRecall(spann_shape.recall)});
    table.addRow({"read MiB / query",
                  formatDouble(dann_shape.mib_per_query, 3),
                  formatDouble(spann_shape.mib_per_query, 3)});
    table.addRow({"block requests / query",
                  formatDouble(dann_shape.requests_per_query, 1),
                  formatDouble(spann_shape.requests_per_query, 1)});
    table.addRow({"dependent I/O rounds / query",
                  formatDouble(dann_shape.io_rounds_per_query, 1),
                  formatDouble(spann_shape.io_rounds_per_query, 1)});
    table.addRow({"mean request size (KiB)",
                  formatDouble(dann_shape.mean_request_kib, 1),
                  formatDouble(spann_shape.mean_request_kib, 1)});
    table.addRow({"device time / query (us, cold)",
                  formatDouble(dann_shape.cold_latency_us, 1),
                  formatDouble(spann_shape.cold_latency_us, 1)});
    table.addRow({"disk footprint (MiB)",
                  formatDouble(static_cast<double>(
                                   diskann.diskBytes()) /
                                   (1 << 20),
                               1),
                  formatDouble(static_cast<double>(
                                   spann.numSectors()) *
                                   4096.0 / (1 << 20),
                               1)});
    table.addRow({"space amplification", "1.0 (no replication)",
                  formatDouble(spann.replicationFactor(), 2) +
                      "x (border replicas)"});
    table.addRow({"resident memory (MiB)",
                  formatDouble(static_cast<double>(
                                   diskann.memoryBytes()) /
                                   (1 << 20),
                               2),
                  formatDouble(static_cast<double>(
                                   spann.memoryBytes()) /
                                   (1 << 20),
                               2)});
    table.print(std::cout);
    table.writeCsv(core::resultsDir() + "/ext_spann.csv");

    std::cout << "shape check: SPANN should show ~1 I/O round with "
                 "multi-KiB requests and\n>1x space amplification; "
                 "DiskANN several rounds of 4 KiB requests with\n"
                 "1x space. Lower cold device time per query goes to "
                 "the index with fewer\ndependent rounds.\n";
    return 0;
}
