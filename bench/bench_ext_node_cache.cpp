/**
 * @file
 * Extension — the application-level sector cache on real I/O.
 *
 * Serves one DiskANN index from the file (and, where available,
 * io_uring) backend and sweeps the node cache from off to half the
 * index size, measuring QPS, latency, and backend I/Os per query at
 * fixed search parameters. A recorded pass cross-checks that results
 * stay bit-identical to the memory backend at every point — the
 * cache must change only how many reads reach the device, never what
 * the search returns.
 *
 * Expected: I/Os per query fall monotonically as the cache grows
 * (the entry region around the medoid is hot on every query), QPS
 * rises correspondingly, and recall is byte-for-byte unchanged. The
 * warm-set row shows BFS warming standing in for the first queries'
 * worth of cold misses.
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/report.hh"
#include "index/diskann_index.hh"
#include "storage/io_backend.hh"

namespace {

using namespace ann;

double
nowUs()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count()) /
           1000.0;
}

struct Point
{
    double qps = 0.0;
    double mean_us = 0.0;
    double p99_us = 0.0;
    /** Backend reads per query on the steady-state recorded pass. */
    double ios_per_query = 0.0;
    storage::NodeCacheStats stats;
    bool identical = true;
};

/**
 * Timing pass (which also warms the dynamic cache), then a recorded
 * pass that counts the sector reads actually issued to the backend
 * and verifies bit-identity against @p reference.
 */
Point
measurePoint(const DiskAnnIndex &index, const workload::Dataset &data,
             const DiskAnnSearchParams &params,
             const std::vector<SearchResult> &reference)
{
    Point point;
    std::vector<double> latencies;
    latencies.reserve(data.num_queries);
    const double start = nowUs();
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const double t0 = nowUs();
        (void)index.search(data.query(q), params);
        latencies.push_back(nowUs() - t0);
    }
    point.qps = static_cast<double>(data.num_queries) * 1e6 /
                (nowUs() - start);
    point.mean_us = mean(latencies);
    point.p99_us = percentile(std::move(latencies), 99.0);

    std::uint64_t sectors = 0;
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        SearchTraceRecorder recorder;
        const SearchResult result =
            index.search(data.query(q), params, &recorder);
        recorder.finish();
        sectors += recorder.totalSectors();
        if (result.size() != reference[q].size()) {
            point.identical = false;
            continue;
        }
        for (std::size_t i = 0; i < result.size(); ++i)
            if (result[i].id != reference[q][i].id ||
                result[i].distance != reference[q][i].distance)
                point.identical = false;
    }
    point.ios_per_query = static_cast<double>(sectors) /
                          static_cast<double>(data.num_queries);
    point.stats = index.nodeCacheStats();
    return point;
}

} // namespace

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Extension: node sector cache on the real-I/O path",
        "expected: backend I/Os per query fall and QPS rises as the "
        "cache grows, with bit-identical results throughout");

    const auto dataset = bench::benchDataset("cohere-1m");
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 64;
    build.graph.build_list = 128;
    build.pq.m = dataset.dim;
    build.pq.ksub = 256;
    index.build(dataset.baseView(), build);

    DiskAnnSearchParams params;
    params.search_list = 64;
    params.beam_width = 4;

    // Memory-backend reference results: the identity yardstick.
    std::vector<SearchResult> reference;
    reference.reserve(dataset.num_queries);
    for (std::size_t q = 0; q < dataset.num_queries; ++q)
        reference.push_back(index.search(dataset.query(q), params));

    const std::size_t index_bytes = index.diskBytes();
    struct Config
    {
        const char *label;
        std::size_t capacity_bytes;
        std::size_t warm_nodes;
    };
    const std::vector<Config> configs = {
        {"off", 0, 0},
        {"5% of index", index_bytes / 20, 0},
        {"12.5% of index", index_bytes / 8, 0},
        {"25% of index", index_bytes / 4, 0},
        {"50% of index", index_bytes / 2, 0},
        {"25% + warm set", index_bytes / 4, index.size() / 10},
    };

    std::vector<storage::IoBackendKind> kinds = {
        storage::IoBackendKind::File};
    if (storage::uringSupported())
        kinds.push_back(storage::IoBackendKind::Uring);
    else
        std::cout << "note: io_uring unavailable here — running the "
                     "file backend only\n\n";

    TextTable table("DiskANN beam search vs node-cache size (" +
                    dataset.name + ", search_list=64, beam=4, index " +
                    formatDouble(static_cast<double>(index_bytes) /
                                     (1024.0 * 1024.0),
                                 1) +
                    " MiB)");
    table.setHeader({"backend", "cache", "QPS", "mean (us)",
                     "P99 (us)", "IOs/query", "hit %", "identical"});

    bool all_identical = true;
    double off_ios = 0.0, off_qps = 0.0;
    double best_ios = 0.0, best_qps = 0.0;
    for (const storage::IoBackendKind kind : kinds) {
        const char *kind_name = storage::ioBackendKindName(kind);
        for (const Config &config : configs) {
            storage::IoOptions options;
            options.kind = kind;
            options.queue_depth = 32;
            options.node_cache.capacity_bytes = config.capacity_bytes;
            options.node_cache.warm_nodes = config.warm_nodes;
            index.setIoMode(options);
            const Point point =
                measurePoint(index, dataset, params, reference);
            all_identical = all_identical && point.identical;
            if (kind == storage::IoBackendKind::File) {
                if (config.capacity_bytes == 0 &&
                    config.warm_nodes == 0) {
                    off_ios = point.ios_per_query;
                    off_qps = point.qps;
                } else if (std::strcmp(config.label, "50% of index") ==
                           0) {
                    best_ios = point.ios_per_query;
                    best_qps = point.qps;
                }
            }
            table.addRow({kind_name, config.label,
                          formatDouble(point.qps, 0),
                          formatDouble(point.mean_us, 1),
                          formatDouble(point.p99_us, 1),
                          formatDouble(point.ios_per_query, 2),
                          core::fmtHitRate(point.stats),
                          point.identical ? "yes" : "NO"});
        }
    }
    table.print(std::cout);
    table.writeCsv(core::resultsDir() + "/ext_node_cache.csv");

    if (off_ios > 0.0 && best_ios > 0.0)
        std::cout << "cache at 50% of index vs off (file backend): "
                  << formatDouble(off_ios / best_ios, 2)
                  << "x fewer backend I/Os per query, "
                  << formatDouble(best_qps / std::max(off_qps, 1e-9),
                                  2)
                  << "x QPS\n";
    std::cout << (all_identical
                      ? "bit-identity: every point matched the "
                        "memory backend exactly\n"
                      : "bit-identity: MISMATCH — the cache changed "
                        "search results\n");
    return all_identical ? 0 : 1;
}
