/**
 * @file
 * Extension — hot-path optimization pass A/B harness.
 *
 * Sweeps every combination of the runtime hot-path toggles (scratch
 * arenas / software prefetch / batched PQ-ADC) over the tuned HNSW
 * and DiskANN setups on the memory backend, and enforces the three
 * contracts the pass makes:
 *
 *  1. Bit-identity: every toggle combination (and the pinned
 *     execution pool) returns the same (id, distance) lists as the
 *     all-off baseline — the optimizations trade allocations, cache
 *     misses, and instruction counts, never arithmetic.
 *  2. Zero steady-state allocations: with scratch reuse on, a
 *     searchInto() query on the memory backend performs no heap
 *     allocation (counted by the global operator new hook below).
 *  3. Kernel equivalence: the 4-wide batched ADC kernels reproduce
 *     the single-code kernels of the same SIMD tier bit for bit.
 *
 * Prints QPS / P99 per combination, reports the all-on vs all-off
 * speedup, and writes results/BENCH_hotpath.json. Exits non-zero if
 * any contract fails, or if the speedup falls below
 * $ANN_HOTPATH_MIN_SPEEDUP (default 0 = report-only; CI gates use
 * the contracts, local runs can set 1.2 to enforce the target).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/hotpath.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/report.hh"
#include "distance/distance.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "index/hnsw_index.hh"

// ------------------------------------------- counting allocator hook
//
// Process-wide allocation counter: every operator new in the binary
// bumps it. The zero-alloc gate snapshots it around a single-threaded
// run of steady-state queries, so no other thread may allocate during
// that window (the bench keeps no pools alive across it).

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size, std::size_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (align <= alignof(std::max_align_t)) {
        p = std::malloc(size ? size : 1);
    } else if (posix_memalign(&p, align, size ? size : align) != 0) {
        p = nullptr;
    }
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size, 0);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size, 0);
}
void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlloc(size, static_cast<std::size_t>(align));
}
void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlloc(size, static_cast<std::size_t>(align));
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace ann;

double
nowUs()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
                   .count()) /
           1000.0;
}

/** One toggle combination of the three in-process switches. */
struct Combo
{
    bool scratch;
    bool prefetch;
    bool adc_batch;
};

void
applyCombo(const Combo &combo)
{
    setScratchReuseEnabled(combo.scratch);
    setPrefetchEnabled(combo.prefetch);
    setAdcBatchEnabled(combo.adc_batch);
}

std::string
comboLabel(const Combo &combo)
{
    std::string label;
    label += combo.scratch ? "scratch " : "-       ";
    label += combo.prefetch ? "prefetch " : "-        ";
    label += combo.adc_batch ? "adc4" : "-";
    return label;
}

struct SweepPoint
{
    double qps = 0.0;
    double p99_us = 0.0;
    /** Per-query (id, distance) lists from the last round. */
    std::vector<SearchResult> results;
};

/**
 * Time @p rounds passes of single-threaded searchInto over the query
 * set (after one untimed warm-up pass) and capture the results for
 * the bit-identity comparison.
 */
template <typename SearchFn>
SweepPoint
sweepPoint(const workload::Dataset &data, std::size_t rounds,
           const SearchFn &search)
{
    SweepPoint point;
    point.results.resize(data.num_queries);
    for (std::size_t q = 0; q < data.num_queries; ++q)
        search(data.query(q), point.results[q]);

    std::vector<double> latencies;
    latencies.reserve(rounds * data.num_queries);
    const double start = nowUs();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t q = 0; q < data.num_queries; ++q) {
            const double t0 = nowUs();
            search(data.query(q), point.results[q]);
            latencies.push_back(nowUs() - t0);
        }
    }
    const double elapsed_us = nowUs() - start;
    point.qps = static_cast<double>(rounds * data.num_queries) * 1e6 /
                elapsed_us;
    point.p99_us = percentile(std::move(latencies), 99.0);
    return point;
}

bool
sameResults(const std::vector<SearchResult> &a,
            const std::vector<SearchResult> &b, const char *what)
{
    if (a.size() != b.size()) {
        std::fprintf(stderr, "FAIL: %s: query count mismatch\n", what);
        return false;
    }
    for (std::size_t q = 0; q < a.size(); ++q) {
        if (a[q].size() != b[q].size()) {
            std::fprintf(stderr,
                         "FAIL: %s: result count differs on query "
                         "%zu\n",
                         what, q);
            return false;
        }
        for (std::size_t i = 0; i < a[q].size(); ++i) {
            if (a[q][i].id != b[q][i].id ||
                a[q][i].distance != b[q][i].distance) {
                std::fprintf(stderr,
                             "FAIL: %s: query %zu rank %zu diverged\n",
                             what, q, i);
                return false;
            }
        }
    }
    return true;
}

/**
 * Steady-state allocation count per query: warm the calling thread's
 * scratch, then count allocations across @p queries reused-output
 * searches. Must run with no other live thread.
 */
template <typename SearchFn>
double
allocsPerQuery(const workload::Dataset &data, const SearchFn &search)
{
    SearchResult out;
    const std::size_t warm =
        std::min<std::size_t>(32, data.num_queries);
    for (std::size_t q = 0; q < warm; ++q)
        search(data.query(q), out);
    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    for (std::size_t q = 0; q < data.num_queries; ++q)
        search(data.query(q), out);
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    return static_cast<double>(after - before) /
           static_cast<double>(data.num_queries);
}

/** Dispatched and scalar batch-4 ADC kernels vs their single-code
 *  references, exact equality over random inputs. */
bool
adcKernelsMatch()
{
    Rng rng(0xadc4);
    for (const std::size_t m : {1u, 4u, 8u, 16u, 23u, 64u, 128u}) {
        const std::size_t ksub = 256;
        std::vector<float> table(m * ksub);
        for (auto &x : table)
            x = rng.nextFloat(0.0f, 4.0f);
        std::vector<std::uint8_t> codes(4 * m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextBelow(ksub));
        const std::uint8_t *ptrs[4] = {
            codes.data(), codes.data() + m, codes.data() + 2 * m,
            codes.data() + 3 * m};
        float batched[4];
        pqAdcDistanceBatch4(table.data(), m, ksub, ptrs, batched);
        float scalar_batched[4];
        pqAdcDistanceBatch4Scalar(table.data(), m, ksub, ptrs,
                                  scalar_batched);
        for (std::size_t i = 0; i < 4; ++i) {
            const float single =
                pqAdcDistance(table.data(), m, ksub, ptrs[i]);
            const float scalar_single =
                pqAdcDistanceScalar(table.data(), m, ksub, ptrs[i]);
            if (batched[i] != single) {
                std::fprintf(stderr,
                             "FAIL: batched ADC diverged from the "
                             "dispatched single-code kernel (m=%zu "
                             "lane %zu: %a vs %a)\n",
                             m, i, static_cast<double>(batched[i]),
                             static_cast<double>(single));
                return false;
            }
            if (scalar_batched[i] != scalar_single) {
                std::fprintf(stderr,
                             "FAIL: scalar batched ADC diverged from "
                             "the scalar reference (m=%zu lane %zu)\n",
                             m, i);
                return false;
            }
        }
    }
    return true;
}

} // namespace

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Extension: hot-path pass (scratch / prefetch / batched ADC "
        "/ pinning)",
        "expected: all-on >= 1.2x all-off QPS on the memory backend "
        "with bit-identical results in every toggle combination");

    const auto rounds = static_cast<std::size_t>(
        std::max<std::int64_t>(1, envInt("ANN_HOTPATH_ROUNDS", 3)));
    const double min_speedup = [] {
        const char *env = std::getenv("ANN_HOTPATH_MIN_SPEEDUP");
        return env != nullptr ? std::atof(env) : 0.0;
    }();
    const auto dataset = bench::benchDataset("cohere-1m");

    // Tuned setups, built directly so the sweep hits searchInto()
    // without an engine wrapper between the timer and the index.
    HnswIndex hnsw;
    {
        HnswBuildParams build; // paper defaults: M=16, efC=200
        hnsw.build(dataset.baseView(), build);
    }
    DiskAnnIndex diskann;
    {
        DiskAnnBuildParams build;
        build.graph.max_degree = 64;
        build.graph.build_list = 128;
        build.pq.m = dataset.dim;
        build.pq.ksub = 256;
        diskann.build(dataset.baseView(), build);
    }

    // Tune each index's knob to the paper's 0.9 recall@10 target.
    HnswSearchParams hnsw_params;
    double hnsw_recall = 0.0;
    for (const std::size_t ef : {16u, 24u, 32u, 48u, 64u, 96u, 128u}) {
        hnsw_params.ef_search = ef;
        double acc = 0.0;
        for (std::size_t q = 0; q < dataset.num_queries; ++q)
            acc += recallAtK(dataset.ground_truth[q],
                             hnsw.search(dataset.query(q), hnsw_params),
                             hnsw_params.k);
        hnsw_recall = acc / static_cast<double>(dataset.num_queries);
        if (hnsw_recall >= 0.9)
            break;
    }
    DiskAnnSearchParams diskann_params;
    double diskann_recall = 0.0;
    for (const std::size_t sl : {10u, 20u, 30u, 40u, 60u, 80u}) {
        diskann_params.search_list = sl;
        double acc = 0.0;
        for (std::size_t q = 0; q < dataset.num_queries; ++q)
            acc += recallAtK(
                dataset.ground_truth[q],
                diskann.search(dataset.query(q), diskann_params),
                diskann_params.k);
        diskann_recall = acc / static_cast<double>(dataset.num_queries);
        if (diskann_recall >= 0.9)
            break;
    }
    std::printf("tuned: HNSW efSearch=%zu (recall %.3f), DiskANN "
                "search_list=%zu (recall %.3f), %zu queries x %zu "
                "rounds\n\n",
                hnsw_params.ef_search, hnsw_recall,
                diskann_params.search_list, diskann_recall,
                dataset.num_queries, rounds);

    const auto hnsw_search = [&](const float *query,
                                 SearchResult &out) {
        hnsw.searchInto(query, hnsw_params, out);
    };
    const auto diskann_search = [&](const float *query,
                                    SearchResult &out) {
        diskann.searchInto(query, diskann_params, out);
    };

    bool ok = true;

    // ------------------------------------------- toggle-combo sweep
    TextTable table("hot-path toggle sweep (" + dataset.name +
                    ", memory backend, 1 thread)");
    table.setHeader({"combo", "HNSW QPS", "HNSW P99 (us)",
                     "DiskANN QPS", "DiskANN P99 (us)"});
    std::vector<Combo> combos;
    for (unsigned mask = 0; mask < 8; ++mask)
        combos.push_back({(mask & 1u) != 0, (mask & 2u) != 0,
                          (mask & 4u) != 0});
    std::vector<SweepPoint> hnsw_points, diskann_points;
    for (const Combo &combo : combos) {
        applyCombo(combo);
        hnsw_points.push_back(
            sweepPoint(dataset, rounds, hnsw_search));
        diskann_points.push_back(
            sweepPoint(dataset, rounds, diskann_search));
        table.addRow(
            {comboLabel(combo),
             formatDouble(hnsw_points.back().qps, 0),
             formatDouble(hnsw_points.back().p99_us, 1),
             formatDouble(diskann_points.back().qps, 0),
             formatDouble(diskann_points.back().p99_us, 1)});
    }
    table.print(std::cout);

    // Gate 1: bit-identity of every combination vs all-off.
    for (std::size_t i = 1; i < combos.size(); ++i) {
        const std::string what = comboLabel(combos[i]);
        ok &= sameResults(hnsw_points[0].results,
                          hnsw_points[i].results,
                          ("HNSW " + what).c_str());
        ok &= sameResults(diskann_points[0].results,
                          diskann_points[i].results,
                          ("DiskANN " + what).c_str());
    }
    const double hnsw_speedup =
        hnsw_points.back().qps / hnsw_points.front().qps;
    const double diskann_speedup =
        diskann_points.back().qps / diskann_points.front().qps;
    std::printf("\nall-on vs all-off speedup: HNSW %.2fx, DiskANN "
                "%.2fx\n",
                hnsw_speedup, diskann_speedup);
    const double best_speedup =
        std::max(hnsw_speedup, diskann_speedup);
    if (best_speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: best speedup %.2fx below "
                     "$ANN_HOTPATH_MIN_SPEEDUP=%.2f\n",
                     best_speedup, min_speedup);
        ok = false;
    }

    // Regression gate: turning every optimization ON must not make
    // DiskANN slower than all-off (the recorded 3375->3134 QPS
    // batched-ADC regression, fixed by the pending-count threshold).
    // A small tolerance absorbs shared-runner timing noise.
    const double regress_tol = [] {
        const char *env = std::getenv("ANN_HOTPATH_REGRESS_TOLERANCE");
        return env != nullptr ? std::atof(env) : 0.95;
    }();
    if (diskann_speedup < regress_tol) {
        std::fprintf(stderr,
                     "FAIL: DiskANN all-on regressed vs all-off "
                     "(%.2fx < tolerance %.2f) — batched ADC is "
                     "hurting the beam search again\n",
                     diskann_speedup, regress_tol);
        ok = false;
    }

    // ----------------------------------- pinned execution pool check
    // The fourth toggle moves threads, not arithmetic: a pinned pool
    // must reproduce the serial results bit for bit.
    applyCombo({true, true, true});
    double qps_unpinned = 0.0, qps_pinned = 0.0;
    std::size_t pinned_workers = 0;
    const bool pin_supported = ThreadPool::pinningSupported();
    // At least one spawned worker must exist for pinning to have
    // anything to pin: ThreadPool(0, ...) on a single-CPU cpuset
    // sizes to 1 and spawns none, which is exactly how the recorded
    // `pinned_workers: 0` regression happened.
    const std::size_t pool_threads =
        std::max<std::size_t>(2, ThreadPool::allowedCpuCount());
    {
        std::vector<SearchResult> parallel_out(dataset.num_queries);
        for (const bool pin : {false, true}) {
            ThreadPool pool(pool_threads, pin);
            const auto body = [&](std::size_t begin, std::size_t end) {
                for (std::size_t q = begin; q < end; ++q)
                    diskann.searchInto(dataset.query(q),
                                       diskann_params,
                                       parallel_out[q]);
            };
            pool.parallelFor(dataset.num_queries, 1, body); // warm-up
            const double t0 = nowUs();
            for (std::size_t r = 0; r < rounds; ++r)
                pool.parallelFor(dataset.num_queries, 1, body);
            const double qps =
                static_cast<double>(rounds * dataset.num_queries) *
                1e6 / (nowUs() - t0);
            (pin ? qps_pinned : qps_unpinned) = qps;
            if (pin)
                pinned_workers = pool.pinnedThreads();
            ok &= sameResults(diskann_points.back().results,
                              parallel_out,
                              pin ? "DiskANN pinned pool"
                                  : "DiskANN unpinned pool");
        }
    }
    std::printf("parallel DiskANN QPS: unpinned %.0f, pinned %.0f "
                "(%zu of %zu workers pinned)\n",
                qps_unpinned, qps_pinned, pinned_workers,
                pool_threads - 1);
    // Regression gate: with pinning requested and the platform
    // willing, workers must actually be pinned. Where affinity is
    // unavailable (restricted sandbox / seccomp) the check is
    // *skipped out loud*, never silently passed.
    if (pin_supported && pinned_workers == 0) {
        std::fprintf(stderr,
                     "FAIL: pinning requested and supported, but no "
                     "worker was pinned\n");
        ok = false;
    } else if (!pin_supported) {
        std::printf("pinning check SKIPPED: thread affinity is "
                    "unavailable in this environment\n");
    }

    // ----------------------------------------- zero-allocation gate
    // All toggles on; single-threaded; memory backend. The arena
    // contract says the steady-state query allocates nothing.
    const double hnsw_allocs = allocsPerQuery(dataset, hnsw_search);
    const double diskann_allocs =
        allocsPerQuery(dataset, diskann_search);
    std::printf("steady-state allocations/query: HNSW %.3f, DiskANN "
                "%.3f\n",
                hnsw_allocs, diskann_allocs);
    if (hnsw_allocs != 0.0 || diskann_allocs != 0.0) {
        std::fprintf(stderr,
                     "FAIL: steady-state query path allocated "
                     "(HNSW %.3f, DiskANN %.3f per query)\n",
                     hnsw_allocs, diskann_allocs);
        ok = false;
    }

    // ---------------------------------------- ADC divergence gate
    const bool kernels_ok = adcKernelsMatch();
    ok &= kernels_ok;
    std::printf("batched ADC kernels match single-code references: "
                "%s\n",
                kernels_ok ? "yes" : "NO");

    // Leave the process-default toggles as the environment set them.
    setScratchReuseEnabled(envFlag("ANN_SCRATCH", true));
    setPrefetchEnabled(envFlag("ANN_PREFETCH", true));
    setAdcBatchEnabled(envFlag("ANN_ADC_BATCH", true));

    // --------------------------------------------------- JSON report
    const std::string json_path =
        core::resultsDir() + "/BENCH_hotpath.json";
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"dataset\": \"%s\",\n  \"queries\": %zu,"
                     "\n  \"rounds\": %zu,\n",
                     dataset.name.c_str(), dataset.num_queries,
                     rounds);
        const auto dump = [&](const char *name,
                              const std::vector<SweepPoint> &points,
                              double recall) {
            std::fprintf(f, "  \"%s\": {\n    \"recall\": %.4f,\n"
                            "    \"combos\": [\n",
                         name, recall);
            for (std::size_t i = 0; i < points.size(); ++i)
                std::fprintf(
                    f,
                    "      {\"scratch\": %d, \"prefetch\": %d, "
                    "\"adc_batch\": %d, \"qps\": %.1f, "
                    "\"p99_us\": %.1f}%s\n",
                    combos[i].scratch ? 1 : 0,
                    combos[i].prefetch ? 1 : 0,
                    combos[i].adc_batch ? 1 : 0, points[i].qps,
                    points[i].p99_us,
                    i + 1 < points.size() ? "," : "");
            std::fprintf(f, "    ],\n    \"speedup\": %.3f\n  },\n",
                         points.back().qps / points.front().qps);
        };
        dump("hnsw", hnsw_points, hnsw_recall);
        dump("diskann", diskann_points, diskann_recall);
        std::fprintf(
            f,
            "  \"parallel\": {\"qps_unpinned\": %.1f, "
            "\"qps_pinned\": %.1f, \"pinned_workers\": %zu, "
            "\"pin_supported\": %s},\n"
            "  \"allocs_per_query\": {\"hnsw\": %.3f, "
            "\"diskann\": %.3f},\n"
            "  \"adc_kernels_match\": %s,\n"
            "  \"bit_identical\": %s,\n"
            "  \"adc_batch_min\": %zu,\n"
            "  \"regress_tolerance_gate\": %.2f,\n"
            "  \"min_speedup_gate\": %.2f\n}\n",
            qps_unpinned, qps_pinned, pinned_workers,
            pin_supported ? "true" : "false", hnsw_allocs,
            diskann_allocs, kernels_ok ? "true" : "false",
            ok ? "true" : "false", adcBatchMinPending(),
            regress_tol, min_speedup);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    } else {
        std::fprintf(stderr, "FAIL: cannot write %s\n",
                     json_path.c_str());
        ok = false;
    }

    if (!ok) {
        std::fprintf(stderr, "bench_ext_hotpath: GATES FAILED\n");
        return 1;
    }
    std::printf("bench_ext_hotpath: all gates passed\n");
    return 0;
}
