/**
 * @file
 * Figure 10 — total read bandwidth of Milvus-DiskANN as search_list
 * grows, at 1 and 256 threads (O-20/O-21: ~3x at 1T, ~2x at 256T,
 * SSD still unsaturated).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Figure 10: DiskANN total read bandwidth vs search_list",
        "paper: x3.0-3.3 at 1T, x2.0-2.4 at 256T from 10->100; max "
        "1620 MiB/s -- never saturating the SSD");

    core::BenchRunner runner(core::paperTestbed());
    const auto sweep = core::searchListSweep();

    std::map<std::size_t,
             std::map<std::string, std::map<std::size_t, double>>>
        bw; // [threads][dataset][search_list]

    for (const std::size_t threads : {1u, 256u}) {
        TextTable table("Fig. 10: read bandwidth (MiB/s) at " +
                        std::to_string(threads) + " thread(s)");
        std::vector<std::string> header{"dataset"};
        for (auto sl : sweep)
            header.push_back("L=" + std::to_string(sl));
        table.setHeader(header);

        for (const auto &dataset_name : workload::paperDatasetNames()) {
            const auto dataset = bench::benchDataset(dataset_name);
            auto prepared =
                bench::prepareTuned("milvus-diskann", dataset);
            std::vector<std::string> row{dataset_name};
            for (auto sl : sweep) {
                auto settings = prepared.settings;
                settings.search_list = sl;
                const auto m = runner.measure(*prepared.engine, dataset,
                                              settings, threads);
                row.push_back(core::fmtMib(m.replay.read_bw_mib));
                bw[threads][dataset_name][sl] = m.replay.read_bw_mib;
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        table.writeCsv(core::resultsDir() + "/fig10_" +
                       std::to_string(threads) + "t.csv");
    }

    std::cout << "\nshape checks:\n";
    double max_bw = 0.0;
    for (auto &[t, by_ds] : bw)
        for (auto &[ds, by_sl] : by_ds)
            for (auto &[sl, v] : by_sl)
                max_bw = std::max(max_bw, v);
    for (const auto &ds : workload::paperDatasetNames()) {
        std::cout << "  [" << ds << "] O-20 bandwidth 10->100: x"
                  << formatDouble(bw[1][ds][100] / bw[1][ds][10], 2)
                  << " at 1T (paper: 3.0-3.3x), x"
                  << formatDouble(bw[256][ds][100] / bw[256][ds][10], 2)
                  << " at 256T (paper: 2.0-2.4x)\n";
    }
    std::cout << "  O-21 max bandwidth " << core::fmtMib(max_bw)
              << " MiB/s = "
              << formatDouble(max_bw / (7.2 * 1024.0) * 100.0, 1)
              << "% of the SSD (paper: 1620 MiB/s, 22%)\n";
    return 0;
}
