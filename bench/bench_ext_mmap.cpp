/**
 * @file
 * Extension (paper SS III-C) — Qdrant's mmap storage mode.
 *
 * The paper benchmarked Qdrant memory-based only because its mmap
 * mode showed "no statistically different performance ... since
 * there is enough CPU memory to hold the vectors and their
 * associated indexes." This bench reproduces that result (cache >=
 * index size) and then shrinks the page cache to show what the paper
 * would have seen on a memory-constrained host: dependent page
 * faults on the graph walk — the I/O-dependency pathology of
 * graph indexes the paper's SS II describes.
 */

#include <iostream>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/bench_runner.hh"
#include "core/report.hh"
#include "engine/qdrant_like.hh"

int
main()
{
    using namespace ann;
    core::printBenchHeader(
        "Extension (SS III-C): Qdrant mmap storage mode",
        "paper: no significant difference vs memory when RAM "
        "suffices; constrained caches expose the graph's dependent "
        "I/O");

    core::BenchRunner runner(core::paperTestbed());
    const std::size_t clients = 32;

    for (const auto &dataset_name : workload::smallDatasetNames()) {
        const auto dataset = bench::benchDataset(dataset_name);
        const auto tuned = bench::prepareTuned("qdrant-hnsw", dataset);

        // Index sectors, to size the cache relative to the file.
        engine::QdrantLikeEngine probe(true);
        probe.prepare(dataset, envString("ANN_CACHE_DIR",
                                         "./ann_cache"));
        const auto file_sectors = probe.diskSectors();

        TextTable table("qdrant memory vs mmap (" + dataset_name +
                        "), " + std::to_string(clients) + " clients");
        table.setHeader({"mode", "cache/index", "QPS", "P99 (us)",
                         "read MiB/s"});

        // Memory-based reference.
        {
            engine::QdrantLikeEngine memory_mode(false);
            memory_mode.prepare(dataset, envString("ANN_CACHE_DIR",
                                                   "./ann_cache"));
            const auto m = runner.measure(memory_mode, dataset,
                                          tuned.settings, clients);
            table.addRow({"memory", "-", core::fmtQps(m.replay),
                          core::fmtP99(m.replay), "0.0"});
        }

        for (const double ratio : {1.5, 0.5, 0.25}) {
            const auto pages = static_cast<std::size_t>(
                std::max(64.0, ratio *
                                   static_cast<double>(file_sectors)));
            engine::QdrantLikeEngine mmap_mode(true, pages);
            mmap_mode.prepare(dataset, envString("ANN_CACHE_DIR",
                                                 "./ann_cache"));
            const auto m = runner.measure(mmap_mode, dataset,
                                          tuned.settings, clients);
            table.addRow({"mmap", formatDouble(ratio, 2),
                          core::fmtQps(m.replay),
                          core::fmtP99(m.replay),
                          core::fmtMib(m.replay.read_bw_mib)});
        }
        table.print(std::cout);
        table.writeCsv(core::resultsDir() + "/ext_mmap_" +
                       dataset_name + ".csv");
    }
    std::cout << "shape check: mmap at cache/index >= 1 should sit "
                 "within a few percent\nof memory mode (the paper's "
                 "non-result); smaller caches should collapse\n"
                 "throughput and inflate P99 via dependent 4 KiB "
                 "faults.\n";
    return 0;
}
