/**
 * @file
 * annserve — network front end for one prepared engine.
 *
 * Loads a dataset, prepares a setup (same cache as annbench), and
 * serves it over the binary protocol until SIGTERM/SIGINT:
 *
 *   annserve --setup milvus-hnsw --dataset cohere-1m --port 7654
 *
 * Prints "annserve: listening on HOST:PORT" once ready (scripts wait
 * for that line), tuned search parameters to pass to annload, and a
 * final metrics summary after the graceful drain.
 *
 * Cluster mode: `--shard i/N` serves only shard i's contiguous row
 * slice (ids offset back into the global space), and `--topology FILE
 * --replica r` binds the endpoint the shard map assigns to replica r
 * of that shard — the same file drives annrouter and annload.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>

#include "common/args.hh"
#include "common/error.hh"
#include "common/thread_pool.hh"
#include "core/experiments.hh"
#include "core/tuner.hh"
#include "dist/topology.hh"
#include "index/layout.hh"
#include "serve/server.hh"
#include "storage/io_backend.hh"
#include "workload/registry.hh"

namespace {

ann::serve::AnnServer *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    // requestStop is async-signal-safe (atomic store + eventfd write).
    if (g_server != nullptr)
        g_server->requestStop();
}

void
printUsage()
{
    std::printf(
        "usage: annserve [options]\n"
        "  --setup NAME        one of:");
    for (const auto &name : ann::core::allSetups())
        std::printf(" %s", name.c_str());
    std::printf(
        "\n"
        "  --dataset NAME      cohere-1m|cohere-10m|openai-500k|"
        "openai-5m\n"
        "  --bind ADDR         listen address (default 127.0.0.1)\n"
        "  --port N            TCP port (default 7654; 0 = ephemeral,\n"
        "                      printed in the readiness line)\n"
        "  --queue-limit N     admission limit; requests beyond it "
        "are\n"
        "                      shed with OVERLOADED (default 64)\n"
        "  --max-batch N       micro-batch drain size (default 8)\n"
        "  --exec-threads N    execution pool width (default: "
        "hardware\n"
        "                      concurrency; 1 = serial)\n"
        "  --pin-threads       pin execution-pool workers to cores in\n"
        "                      NUMA-node order (default: "
        "$ANN_PIN_THREADS)\n"
        "  --max-connections N accepted-connection cap (default "
        "1024)\n"
        "  --io-backend NAME   node-file I/O backend: memory|file|"
        "uring\n"
        "  --io-queue-depth N  in-flight requests per real-I/O batch\n"
        "  --mem-budget-mb N   DRAM budget for index state; tiers\n"
        "                      PQ codes / posting payloads onto the\n"
        "                      I/O backend when exceeded (0 = all\n"
        "                      resident; overrides $ANN_MEM_BUDGET_MB)\n"
        "  --node-cache-mb N   sector-cache capacity per index (MiB;\n"
        "                      0 = off, default $ANN_NODE_CACHE_MB)\n"
        "  --async-beam        pipelined beam search: score nodes as\n"
        "                      their reads land ($ANN_ASYNC_BEAM)\n"
        "  --io-pooled         merge per-query submissions into one\n"
        "                      shared uring ring ($ANN_IO_POOLED)\n"
        "  --warm-nodes N      nodes BFS-warmed from the medoid "
        "(DiskANN\n"
        "                      only, default $ANN_WARM_NODES)\n"
        "  --layout NAME       DiskANN on-disk node placement:\n"
        "                      id-order|packed-bfs (default: "
        "$ANN_LAYOUT\n"
        "                      or id-order)\n"
        "  --shard I/N         serve only shard I of N (contiguous "
        "row\n"
        "                      slice; returned ids stay global)\n"
        "  --topology FILE     cluster shard map; with --shard, binds "
        "the\n"
        "                      endpoint assigned to this replica\n"
        "  --replica R         replica index within the shard "
        "(default 0)\n"
        "  --debug-slow-every N  sleep on every Nth request (0 = "
        "off)\n"
        "  --debug-slow-us US  injected straggler sleep duration\n"
        "  --help              this message\n");
}

int
runServe(const ann::ArgParser &args)
{
    using namespace ann;

    {
        storage::IoOptions io = storage::IoOptions::fromEnv();
        if (args.has("io-backend")) {
            const std::string name = args.get("io-backend", "memory");
            ANN_CHECK(storage::ioBackendKindFromName(name, &io.kind),
                      "unknown --io-backend '", name,
                      "' (valid: memory|file|uring)");
        }
        if (args.has("io-queue-depth"))
            io.queue_depth = static_cast<unsigned>(
                std::max<std::int64_t>(
                    1, args.getInt("io-queue-depth", 32)));
        if (args.has("node-cache-mb"))
            io.node_cache.capacity_bytes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("node-cache-mb", 0))) *
                (1u << 20);
        if (args.has("warm-nodes"))
            io.node_cache.warm_nodes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("warm-nodes", 0)));
        if (args.has("mem-budget-mb"))
            io.mem_budget_bytes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("mem-budget-mb", 0))) *
                (1u << 20);
        storage::setDefaultIoOptions(io);
    }
    if (args.flag("async-beam"))
        storage::setAsyncBeamEnabled(true);
    if (args.flag("io-pooled"))
        storage::setIoPooledEnabled(true);

    // Resolve the on-disk layout before prepareEngine builds or loads
    // any DiskANN segment; the flag overrides $ANN_LAYOUT.
    if (args.has("layout")) {
        const std::string name = args.get("layout", "default");
        LayoutPolicy policy = LayoutPolicy::Default;
        ANN_CHECK(layoutPolicyFromName(name, &policy),
                  "unknown --layout '", name,
                  "' (valid: id-order|packed-bfs)");
        setDefaultLayoutPolicy(policy);
    }

    const std::string setup = args.get("setup", "milvus-hnsw");
    const std::string dataset_name = args.get("dataset", "cohere-1m");
    std::printf("annserve: loading %s and preparing %s...\n",
                dataset_name.c_str(), setup.c_str());
    auto dataset = workload::loadOrGenerate(dataset_name);

    // Cluster mode: restrict the dataset to this process's shard
    // slice before any index is built. Returned ids are offset back
    // into the global id space so the router's merged top-k is
    // comparable to a single-process run.
    dist::ShardSpec shard_spec;
    const bool sharded = args.has("shard");
    std::uint64_t id_offset = 0;
    if (sharded) {
        ANN_CHECK(dist::parseShardSpec(args.get("shard", ""),
                                       &shard_spec),
                  "bad --shard '", args.get("shard", ""),
                  "' (want I/N with I < N)");
        const auto range = dist::shardRange(
            dataset.rows, shard_spec.index, shard_spec.count);
        id_offset = range.begin;
        dataset = dist::shardSlice(dataset, shard_spec);
        std::printf("annserve: shard %zu/%zu: rows [%zu, %zu) of %s\n",
                    shard_spec.index, shard_spec.count, range.begin,
                    range.end, dataset_name.c_str());
    }

    auto engine = core::prepareEngine(setup, dataset);

    if (!sharded) {
        // Hand the operator parameters that reach the tuned recall
        // target, ready to paste into an annload invocation. Shards
        // skip this: their slice carries no ground truth (recall is
        // accounted at the router/client in global ids).
        const auto tuned = core::tunedSettings(*engine, dataset, 0.9);
        std::printf("annserve: tuned settings: --k %zu --nprobe %zu "
                    "--ef-search %zu --search-list %zu --beam-width "
                    "%zu (recall@%zu %.3f)\n",
                    tuned.settings.k, tuned.settings.nprobe,
                    tuned.settings.ef_search,
                    tuned.settings.search_list,
                    tuned.settings.beam_width, tuned.settings.k,
                    tuned.recall);
    }

    serve::ServerConfig config;
    config.bind_address = args.get("bind", "127.0.0.1");
    config.port =
        static_cast<std::uint16_t>(args.getInt("port", 7654));
    if (args.has("topology")) {
        // The shard map assigns this process its endpoint, keeping
        // annserve, annrouter, and annload consistent from one file.
        ANN_CHECK(sharded, "--topology requires --shard I/N");
        const auto topology =
            dist::loadTopologyFile(args.get("topology", ""));
        ANN_CHECK(shard_spec.count == topology.numShards(),
                  "--shard says ", shard_spec.count,
                  " shards but the topology has ",
                  topology.numShards());
        const auto replica =
            static_cast<std::size_t>(args.getInt("replica", 0));
        ANN_CHECK(replica < topology.numReplicas(shard_spec.index),
                  "--replica ", replica, " out of range (shard has ",
                  topology.numReplicas(shard_spec.index),
                  " replicas)");
        const dist::Endpoint &self =
            topology.shards[shard_spec.index][replica];
        config.bind_address = self.host;
        config.port = self.port;
    }
    config.id_offset = id_offset;
    config.slow_every = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.getInt("debug-slow-every", 0)));
    config.slow_us =
        std::chrono::microseconds(std::max<std::int64_t>(
            0, args.getInt("debug-slow-us", 0)));
    config.queue_limit =
        static_cast<std::size_t>(args.getInt("queue-limit", 64));
    config.max_batch =
        static_cast<std::size_t>(args.getInt("max-batch", 8));
    config.exec_threads =
        static_cast<std::size_t>(args.getInt("exec-threads", 0));
    if (args.flag("pin-threads"))
        ThreadPool::setPinByDefault(true);
    config.max_connections = static_cast<std::size_t>(
        args.getInt("max-connections", 1024));
    config.expected_dim = dataset.dim;

    serve::AnnServer server(*engine, config);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    std::printf("annserve: listening on %s:%u\n",
                config.bind_address.c_str(), server.port());
    std::fflush(stdout);

    server.waitStopped();
    g_server = nullptr;

    const serve::MetricsSnapshot m = server.metrics();
    std::printf("annserve: drained. %llu requests (%llu ok, %llu "
                "shed, %llu protocol errors) over %llu connections; "
                "%.0f QPS, P50 %.0f us, P99 %.0f us, P99.9 %.0f us\n",
                static_cast<unsigned long long>(m.received),
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.shed),
                static_cast<unsigned long long>(m.protocol_errors),
                static_cast<unsigned long long>(m.accepted_connections),
                m.qps, m.p50_us, m.p99_us, m.p999_us);
    if (m.eff_queue_depth > 0.0)
        std::printf("annserve: effective I/O queue depth: %.2f mean "
                    "in-flight reads\n",
                    m.eff_queue_depth);
    if (m.cache_lookups > 0)
        std::printf("annserve: node cache: %llu lookups, %llu hits "
                    "(%.1f%%), %.1f MiB saved, %llu reads deduped\n",
                    static_cast<unsigned long long>(m.cache_lookups),
                    static_cast<unsigned long long>(m.cache_hits),
                    100.0 * static_cast<double>(m.cache_hits) /
                        static_cast<double>(m.cache_lookups),
                    static_cast<double>(m.cache_bytes_saved) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(m.cache_deduped));
    std::printf("annserve: resident index %.1f MiB, peak RSS %.1f "
                "MiB\n",
                static_cast<double>(m.resident_index_bytes) /
                    (1024.0 * 1024.0),
                static_cast<double>(m.peak_rss_bytes) /
                    (1024.0 * 1024.0));
    if (m.code_cache_lookups > 0)
        std::printf("annserve: code cache: %llu lookups, %llu hits "
                    "(%.1f%%)\n",
                    static_cast<unsigned long long>(
                        m.code_cache_lookups),
                    static_cast<unsigned long long>(m.code_cache_hits),
                    100.0 * static_cast<double>(m.code_cache_hits) /
                        static_cast<double>(m.code_cache_lookups));
    if (m.learned_entry != 0 || m.learned_early_stop != 0 ||
        !m.learned_model.empty())
        std::printf("annserve: learned policies: entry=%s "
                    "early-stop=%s model=%s\n",
                    m.learned_entry != 0 ? "on" : "off",
                    m.learned_early_stop != 0 ? "on" : "off",
                    m.learned_model.empty() ? "(none)"
                                            : m.learned_model.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    ArgParser args({"setup", "dataset", "bind", "port", "queue-limit",
                    "max-batch", "exec-threads", "max-connections",
                    "io-backend", "io-queue-depth", "node-cache-mb",
                    "mem-budget-mb",
                    "warm-nodes", "layout", "shard", "topology",
                    "replica", "debug-slow-every", "debug-slow-us"},
                   {"help", "pin-threads", "async-beam", "io-pooled"});
    try {
        args.parse(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        printUsage();
        return 1;
    }
    if (args.flag("help")) {
        printUsage();
        return 0;
    }
    try {
        return runServe(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "annserve: %s\n", e.what());
        return 1;
    }
}
