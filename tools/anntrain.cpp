/**
 * @file
 * anntrain — offline trainer for the learned I/O-avoidance model.
 *
 * Consumes the labeled per-hop records that `annbench --learn-dump`
 * (or the bench_ext_real_io learned phase) exports, fits a logistic
 * regression or 1-hidden-layer MLP by SGD, calibrates the early-stop
 * confidence threshold from the positive-prediction distribution, and
 * serializes the weights for `$ANN_LEARN_MODEL` /
 * `annbench --learn-model`:
 *
 *   annbench --setup milvus-diskann --learn-dump hops.csv
 *   anntrain --input hops.csv --output entry.model
 *   ANN_LEARN_MODEL=entry.model ANN_LEARNED_ENTRY=1 ANN_EARLY_STOP=1 \
 *       annbench --setup milvus-diskann --io-backend file
 *
 * Training is deterministic per --seed; no external dependencies.
 */

#include <cstdio>

#include "common/args.hh"
#include "common/error.hh"
#include "learn/hoplog.hh"
#include "learn/model.hh"

namespace {

void
printUsage()
{
    std::printf(
        "usage: anntrain --input HOPS.csv --output MODEL [options]\n"
        "  --input FILE        annlearn-hops CSV (annbench "
        "--learn-dump)\n"
        "  --output FILE       where to write the trained model\n"
        "  --hidden N          hidden units (0 = logistic regression,\n"
        "                      default 0)\n"
        "  --epochs N          SGD epochs (default 40)\n"
        "  --lr F              initial learning rate (default 0.05)\n"
        "  --l2 F              L2 regularization (default 1e-4)\n"
        "  --seed N            shuffle/init seed (default 1)\n"
        "  --threshold-pct P   early-stop threshold = P-th percentile "
        "of\n"
        "                      predictions on positive samples "
        "(default 2:\n"
        "                      the gate keeps 98%% of known-useful "
        "hops)\n"
        "  --help              this message\n");
}

int
runTrain(const ann::ArgParser &args)
{
    using namespace ann;
    ANN_CHECK(args.has("input"), "--input is required");
    ANN_CHECK(args.has("output"), "--output is required");
    const std::string input = args.get("input", "");
    const std::string output = args.get("output", "");

    const auto traces = learn::readHopCsvFile(input);
    const auto samples = learn::samplesFromTraces(traces);
    ANN_CHECK(!samples.empty(), "no hop records in ", input);
    std::size_t positives = 0;
    for (const auto &s : samples)
        positives += s.y > 0.5f ? 1 : 0;
    std::printf("anntrain: %zu queries, %zu samples (%zu positive, "
                "%.2f%%)\n",
                traces.size(), samples.size(), positives,
                100.0 * static_cast<double>(positives) /
                    static_cast<double>(samples.size()));
    ANN_CHECK(positives > 0 && positives < samples.size(),
              "training needs both positive and negative samples");

    learn::TrainParams params;
    params.hidden =
        static_cast<std::size_t>(args.getInt("hidden", 0));
    params.epochs =
        static_cast<std::size_t>(args.getInt("epochs", 40));
    params.learning_rate =
        static_cast<float>(std::stod(args.get("lr", "0.05")));
    params.l2 = static_cast<float>(std::stod(args.get("l2", "1e-4")));
    params.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));

    learn::Model model = learn::Model::train(samples, params);
    const double pct =
        std::stod(args.get("threshold-pct", "2"));
    model.setThreshold(model.positivePercentile(samples, pct));

    // Quality summary: loss + how the calibrated gate splits the set.
    std::size_t pos_kept = 0, neg_cut = 0;
    for (const auto &s : samples) {
        const bool above = model.predict(s.x) >= model.threshold();
        if (s.y > 0.5f && above)
            ++pos_kept;
        if (s.y <= 0.5f && !above)
            ++neg_cut;
    }
    std::printf("anntrain: %s, log-loss %.4f, threshold %.4f "
                "(keeps %.1f%% of positives, cuts %.1f%% of "
                "negatives)\n",
                params.hidden == 0
                    ? "logistic regression"
                    : "1-hidden-layer MLP",
                model.loss(samples),
                static_cast<double>(model.threshold()),
                100.0 * static_cast<double>(pos_kept) /
                    static_cast<double>(positives),
                100.0 * static_cast<double>(neg_cut) /
                    static_cast<double>(samples.size() - positives));

    model.saveFile(output);
    std::printf("anntrain: wrote %s\n", output.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    ArgParser args({"input", "output", "hidden", "epochs", "lr", "l2",
                    "seed", "threshold-pct"},
                   {"help"});
    try {
        args.parse(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        printUsage();
        return 1;
    }
    if (args.flag("help")) {
        printUsage();
        return 0;
    }
    try {
        return runTrain(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "anntrain: %s\n", e.what());
        return 1;
    }
}
