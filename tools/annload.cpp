/**
 * @file
 * annload — network load generator for annserve.
 *
 * Reproduces the paper's client-concurrency sweep over a real socket:
 *
 *   annload --port 7654 --dataset cohere-1m --clients 1,2,4,8,16 \
 *           --ef-search 80
 *
 * Closed loop by default (each client keeps one request in flight,
 * VectorDBBench's discipline); --target-qps switches to an open loop
 * that sends on a fixed schedule and therefore can drive the server
 * into admission-control shedding. Every Ok response is validated
 * against the dataset's ground truth, and --min-recall turns a recall
 * regression into a non-zero exit for CI.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/args.hh"
#include "common/error.hh"
#include "common/table.hh"
#include "dist/topology.hh"
#include "serve/client.hh"
#include "serve/load_gen.hh"
#include "workload/registry.hh"

namespace {

void
printUsage()
{
    std::printf(
        "usage: annload [options]\n"
        "  --host ADDR         server address (default 127.0.0.1)\n"
        "  --port N            server port (required unless "
        "--topology)\n"
        "  --topology FILE     cluster shard map; targets its router\n"
        "                      endpoint instead of --host/--port\n"
        "  --connect-retry-ms N  retry refused connects for up to N "
        "ms\n"
        "                      (default 2000; 0 = single attempt)\n"
        "  --dataset NAME      query + ground-truth source; must "
        "match\n"
        "                      the served dataset (default "
        "cohere-1m)\n"
        "  --clients LIST      comma-separated sweep, e.g. "
        "1,2,4,8,16\n"
        "                      (default 1,2,4,8,16,32,64)\n"
        "  --target-qps N      open loop at this offered rate "
        "(default:\n"
        "                      closed loop)\n"
        "  --duration-s N      seconds per sweep point (default 3)\n"
        "  --k N               neighbours per query (default 10)\n"
        "  --nprobe N          IVF probes (default 8)\n"
        "  --ef-search N       HNSW candidate list (default 50)\n"
        "  --search-list N     DiskANN candidate list (default 10)\n"
        "  --beam-width N      DiskANN beam width (default 4)\n"
        "  --min-recall X      exit 1 if any point's recall@k < X\n"
        "  --no-validate       skip recall validation\n"
        "  --help              this message\n");
}

double
getDouble(const ann::ArgParser &args, const std::string &name,
          double fallback)
{
    if (!args.has(name))
        return fallback;
    const std::string text = args.get(name, "");
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    ANN_CHECK(end != text.c_str() && *end == '\0', "option --", name,
              " expects a number, got '", text, "'");
    return parsed;
}

int
runLoad(const ann::ArgParser &args)
{
    using namespace ann;
    ANN_CHECK(args.has("port") || args.has("topology"),
              "--port (or --topology) is required");

    serve::LoadOptions options;
    if (args.has("topology")) {
        // The shard map names the router endpoint clients talk to —
        // the same file the fleet's annrouter/annserve were given.
        const auto topology =
            dist::loadTopologyFile(args.get("topology", ""));
        ANN_CHECK(topology.router.port != 0,
                  "topology file has no usable router endpoint");
        options.host = topology.router.host;
        options.port = topology.router.port;
    } else {
        options.host = args.get("host", "127.0.0.1");
        options.port =
            static_cast<std::uint16_t>(args.getInt("port", 0));
    }
    options.connect_retry_ms = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0,
                               args.getInt("connect-retry-ms", 2000)));
    options.target_qps = getDouble(args, "target-qps", 0.0);
    options.duration_s = getDouble(args, "duration-s", 3.0);
    options.validate = !args.flag("no-validate");
    options.settings.k =
        static_cast<std::size_t>(args.getInt("k", 10));
    options.settings.nprobe =
        static_cast<std::size_t>(args.getInt("nprobe", 8));
    options.settings.ef_search =
        static_cast<std::size_t>(args.getInt("ef-search", 50));
    options.settings.search_list =
        static_cast<std::size_t>(args.getInt("search-list", 10));
    options.settings.beam_width =
        static_cast<std::size_t>(args.getInt("beam-width", 4));

    const auto clients =
        parseSizeList("clients", args.get("clients", "1,2,4,8,16,32,64"));
    const double min_recall = getDouble(args, "min-recall", -1.0);

    const std::string dataset_name = args.get("dataset", "cohere-1m");
    std::printf("annload: loading %s...\n", dataset_name.c_str());
    const auto dataset = workload::loadOrGenerate(dataset_name);
    options.dataset = &dataset;

    // Workers keep one connection across the whole sweep; only the
    // first point (and any slot retired with unanswered replies) pays
    // establishment time, reported in its own column.
    serve::ClientPool pool;
    options.pool = &pool;

    // Separate connection for server metrics: sector-cache counter
    // deltas around each point become the hit-rate columns. Dialed
    // with the same retry budget — this is the first connection, so
    // it is the one that races server startup.
    serve::AnnClient metrics_client;
    serve::ConnectRetry metrics_retry;
    metrics_retry.max_wait_ms = options.connect_retry_ms;
    metrics_client.connect(options.host, options.port, metrics_retry);

    const bool open_loop = options.target_qps > 0.0;
    const char *discipline = open_loop ? "open" : "closed";
    TextTable table(std::string(discipline) + "-loop sweep against " +
                    options.host + ":" +
                    std::to_string(options.port));
    table.setHeader({"clients", "sent", "QPS", "mean (us)", "P50 (us)",
                     "P99 (us)", "P99.9 (us)",
                     "recall@" + std::to_string(options.settings.k),
                     "shed", "rejected", "unanswered", "conn (us)",
                     "hit %", "MiB saved", "deduped", "eff QD"});

    bool recall_ok = true;
    bool progressed = false;
    for (const std::size_t n : clients) {
        options.clients = n;
        const serve::MetricsSnapshot before = metrics_client.metrics();
        const serve::LoadReport report = open_loop
                                             ? serve::runOpenLoop(options)
                                             : serve::runClosedLoop(options);
        const serve::MetricsSnapshot after = metrics_client.metrics();
        const std::uint64_t lookups =
            after.cache_lookups - before.cache_lookups;
        const std::uint64_t hits = after.cache_hits - before.cache_hits;
        const double mib_saved =
            static_cast<double>(after.cache_bytes_saved -
                                before.cache_bytes_saved) /
            (1024.0 * 1024.0);
        const std::uint64_t deduped =
            after.cache_deduped - before.cache_deduped;
        // The server reports the mean effective queue depth since it
        // started; recover this point's mean from the two cumulative
        // means: interval integral / interval length.
        const double qd_interval_ns = static_cast<double>(
            after.uptime_ns - before.uptime_ns);
        const double eff_qd =
            qd_interval_ns > 0.0
                ? (after.eff_queue_depth *
                       static_cast<double>(after.uptime_ns) -
                   before.eff_queue_depth *
                       static_cast<double>(before.uptime_ns)) /
                      qd_interval_ns
                : 0.0;
        const bool validated = report.recall_samples > 0;
        table.addRow({std::to_string(n), std::to_string(report.sent),
                      formatDouble(report.qps, 0),
                      formatDouble(report.mean_us, 0),
                      formatDouble(report.p50_us, 0),
                      formatDouble(report.p99_us, 0),
                      formatDouble(report.p999_us, 0),
                      validated ? formatDouble(report.recall, 3) : "-",
                      std::to_string(report.shed),
                      std::to_string(report.rejected),
                      std::to_string(report.unanswered),
                      report.connections > 0
                          ? formatDouble(report.connect_us, 0) +
                                (report.connect_retries > 0
                                     ? " (+" +
                                           std::to_string(
                                               report.connect_retries) +
                                           ")"
                                     : "")
                          : "-",
                      lookups > 0
                          ? formatDouble(100.0 *
                                             static_cast<double>(hits) /
                                             static_cast<double>(lookups),
                                         1) +
                                "%"
                          : "-",
                      lookups > 0 ? formatDouble(mib_saved, 1) : "-",
                      lookups > 0 ? std::to_string(deduped) : "-",
                      eff_qd > 0.0 ? formatDouble(eff_qd, 2) : "-"});
        if (report.completed > 0)
            progressed = true;
        if (min_recall >= 0.0 && validated &&
            report.recall < min_recall)
            recall_ok = false;
    }
    table.print(std::cout);

    // Server-side memory picture at drain time: how much index state
    // is DRAM-resident (drops under $ANN_MEM_BUDGET_MB), the server's
    // peak RSS, and — when PQ codes are spilled — the code-page
    // cache's hit rate over the whole sweep.
    const serve::MetricsSnapshot drain = metrics_client.metrics();
    std::printf("server memory: resident index %.1f MiB, "
                "peak RSS %.1f MiB\n",
                static_cast<double>(drain.resident_index_bytes) /
                    (1024.0 * 1024.0),
                static_cast<double>(drain.peak_rss_bytes) /
                    (1024.0 * 1024.0));
    if (drain.code_cache_lookups > 0)
        std::printf("code cache: %llu lookups, %.1f%% hit\n",
                    static_cast<unsigned long long>(
                        drain.code_cache_lookups),
                    100.0 *
                        static_cast<double>(drain.code_cache_hits) /
                        static_cast<double>(drain.code_cache_lookups));

    if (!progressed) {
        std::fprintf(stderr,
                     "annload: no request completed successfully\n");
        return 1;
    }
    if (!recall_ok) {
        std::fprintf(stderr,
                     "annload: recall@%zu below --min-recall %.3f\n",
                     options.settings.k, min_recall);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    ArgParser args({"host", "port", "dataset", "clients", "target-qps",
                    "duration-s", "k", "nprobe", "ef-search",
                    "search-list", "beam-width", "min-recall",
                    "topology", "connect-retry-ms"},
                   {"help", "no-validate"});
    try {
        args.parse(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        printUsage();
        return 1;
    }
    if (args.flag("help")) {
        printUsage();
        return 0;
    }
    try {
        return runLoad(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "annload: %s\n", e.what());
        return 1;
    }
}
