/**
 * @file
 * annrouter — one endpoint in front of a sharded annserve fleet.
 *
 * Reads the cluster shard map, dials every replica (waiting out shard
 * startup with connect retries), and serves the same binary protocol
 * clients already speak: each incoming search is scattered to one
 * replica per shard and the partial top-k lists are merged into the
 * global result. Tail control (hedged requests, per-shard budgets,
 * replica ejection/rejoin) lives in dist::RouterEngine.
 *
 *   annrouter --topology cluster.topo --dataset cohere-1m
 *
 * Prints "annrouter: listening on HOST:PORT" once the fleet answered
 * (scripts wait for that line) and a routing summary after the drain.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>

#include "common/args.hh"
#include "common/error.hh"
#include "dist/router.hh"
#include "dist/topology.hh"
#include "serve/server.hh"
#include "workload/registry.hh"

namespace {

ann::serve::AnnServer *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

void
printUsage()
{
    std::printf(
        "usage: annrouter [options]\n"
        "  --topology FILE     cluster shard map (router + replica\n"
        "                      endpoints; see dist/topology.hh)\n"
        "  --spec SPEC         inline topology, e.g.\n"
        "                      'router@:7600;:7601,:7611;:7602,:7612'\n"
        "  --dataset NAME      dataset the fleet serves (fixes the\n"
        "                      query dimension; default cohere-1m)\n"
        "  --dim N             query dimension override (instead of\n"
        "                      --dataset)\n"
        "  --bind ADDR         listen address override\n"
        "  --port N            listen port override (0 = ephemeral)\n"
        "  --queue-limit N     front-end admission limit (default "
        "256)\n"
        "  --max-batch N       front-end micro-batch size (default "
        "16)\n"
        "  --exec-threads N    scatter-gather worker width (default:\n"
        "                      hardware concurrency)\n"
        "  --shard-budget N    outstanding queries per shard before\n"
        "                      shedding OVERLOADED (default 128; 0 = "
        "off)\n"
        "  --no-hedge          disable hedged requests\n"
        "  --hedge-quantile P  fire the hedge after the replica's P-th\n"
        "                      latency percentile (default 99)\n"
        "  --hedge-min-us N    hedge delay clamp (default 100)\n"
        "  --hedge-max-us N    hedge delay clamp (default 50000)\n"
        "  --timeout-ms N      per-shard query deadline (default "
        "2000)\n"
        "  --ready-wait-ms N   fleet dial budget before serving "
        "anyway\n"
        "                      (default 30000)\n"
        "  --help              this message\n");
}

int
runRouter(const ann::ArgParser &args)
{
    using namespace ann;

    dist::RouterConfig config;
    if (args.has("topology"))
        config.topology =
            dist::loadTopologyFile(args.get("topology", ""));
    else if (args.has("spec"))
        config.topology = dist::parseTopologySpec(args.get("spec", ""));
    else
        ANN_FATAL("annrouter needs --topology FILE or --spec SPEC");

    if (args.has("dim")) {
        config.dim = static_cast<std::size_t>(args.getInt("dim", 0));
    } else {
        // The generator spec carries the dimension without paying for
        // dataset generation — the router never touches the vectors.
        config.dim =
            workload::specForName(args.get("dataset", "cohere-1m")).dim;
    }
    ANN_CHECK(config.dim > 0, "query dimension must be positive");

    config.shard_budget = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, args.getInt("shard-budget", 128)));
    config.hedge = !args.flag("no-hedge");
    config.hedge_quantile = static_cast<double>(
        args.getInt("hedge-quantile", 99));
    config.hedge_min_delay_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, args.getInt("hedge-min-us", 100)));
    config.hedge_max_delay_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, args.getInt("hedge-max-us", 50000)));
    config.request_timeout = std::chrono::milliseconds(
        std::max<std::int64_t>(1, args.getInt("timeout-ms", 2000)));

    dist::RouterEngine router(config);

    std::printf("annrouter: dialing %zu shards x %zu backends...\n",
                config.topology.numShards(),
                config.topology.numBackends());
    std::fflush(stdout);
    const auto ready_wait = std::chrono::milliseconds(
        std::max<std::int64_t>(0, args.getInt("ready-wait-ms", 30000)));
    if (!router.waitReady(ready_wait))
        std::printf("annrouter: warning: fleet not fully reachable; "
                    "unreachable replicas rejoin via probing\n");

    serve::ServerConfig server_config;
    server_config.bind_address = config.topology.router.host;
    server_config.port = config.topology.router.port;
    if (args.has("bind"))
        server_config.bind_address = args.get("bind", "127.0.0.1");
    if (args.has("port"))
        server_config.port =
            static_cast<std::uint16_t>(args.getInt("port", 0));
    server_config.queue_limit =
        static_cast<std::size_t>(args.getInt("queue-limit", 256));
    server_config.max_batch =
        static_cast<std::size_t>(args.getInt("max-batch", 16));
    server_config.exec_threads =
        static_cast<std::size_t>(args.getInt("exec-threads", 0));
    server_config.expected_dim = config.dim;

    serve::AnnServer server(router, server_config);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    std::printf("annrouter: listening on %s:%u\n",
                server_config.bind_address.c_str(), server.port());
    std::fflush(stdout);

    server.waitStopped();
    g_server = nullptr;

    const serve::MetricsSnapshot m = server.metrics();
    const dist::RouterStats r = router.stats();
    std::printf("annrouter: drained. %llu requests (%llu ok, %llu "
                "shed); %.0f QPS, P50 %.0f us, P99 %.0f us, P99.9 "
                "%.0f us\n",
                static_cast<unsigned long long>(m.received),
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.shed), m.qps,
                m.p50_us, m.p99_us, m.p999_us);
    std::printf("annrouter: routed %llu; hedges %llu fired / %llu "
                "won; %llu shed at shard budgets; %llu failovers, "
                "%llu ejections, %llu rejoins, %llu stale replies "
                "skipped\n",
                static_cast<unsigned long long>(r.routed),
                static_cast<unsigned long long>(r.hedges_fired),
                static_cast<unsigned long long>(r.hedge_wins),
                static_cast<unsigned long long>(r.shed_budget),
                static_cast<unsigned long long>(r.failovers),
                static_cast<unsigned long long>(r.ejections),
                static_cast<unsigned long long>(r.rejoins),
                static_cast<unsigned long long>(r.stale_skipped));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    ArgParser args({"topology", "spec", "dataset", "dim", "bind",
                    "port", "queue-limit", "max-batch", "exec-threads",
                    "shard-budget", "hedge-quantile", "hedge-min-us",
                    "hedge-max-us", "timeout-ms", "ready-wait-ms"},
                   {"help", "no-hedge"});
    try {
        args.parse(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        printUsage();
        return 1;
    }
    if (args.flag("help")) {
        printUsage();
        return 0;
    }
    try {
        return runRouter(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "annrouter: %s\n", e.what());
        return 1;
    }
}
