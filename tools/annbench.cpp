/**
 * @file
 * annbench — ad-hoc measurement CLI.
 *
 * Runs any (setup, dataset, parameters, concurrency) point of the
 * study without editing a bench binary — the vectordbbench-style
 * front door of the library:
 *
 *   annbench --setup milvus-diskann --dataset cohere-10m \
 *            --threads 1,4,64 --search-list 20 --trace
 *
 * Prints QPS / latency / recall / CPU / I/O per point and optionally
 * dumps the block trace to CSV.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/args.hh"
#include "common/error.hh"
#include "common/rss.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/bench_runner.hh"
#include "core/experiments.hh"
#include "core/report.hh"
#include "core/tuner.hh"
#include "index/layout.hh"
#include "learn/hoplog.hh"
#include "learn/policy.hh"
#include "storage/block_tracer.hh"
#include "storage/io_backend.hh"
#include "storage/trace_analysis.hh"
#include "workload/registry.hh"

namespace {

void
printUsage()
{
    std::printf(
        "usage: annbench [options]\n"
        "  --setup NAME        one of:");
    for (const auto &name : ann::core::allSetups())
        std::printf(" %s", name.c_str());
    std::printf(
        "\n"
        "  --dataset NAME      cohere-1m|cohere-10m|openai-500k|"
        "openai-5m\n"
        "  --threads LIST      comma-separated client counts "
        "(default 1,16,256)\n"
        "  --exec-threads N    worker threads for real query "
        "execution\n"
        "                      (default: hardware concurrency; 1 = "
        "serial)\n"
        "  --verify-exec       cross-check parallel execution "
        "against a\n"
        "                      serial run (bit-identical results + "
        "traces)\n"
        "  --pin-threads       pin execution-pool workers to cores in\n"
        "                      NUMA-node order (default: "
        "$ANN_PIN_THREADS)\n"
        "  --k N               neighbours per query (default 10)\n"
        "  --nprobe N          IVF probes (default: tuned)\n"
        "  --ef-search N       HNSW candidate list (default: tuned)\n"
        "  --search-list N     DiskANN candidate list (default: "
        "tuned)\n"
        "  --beam-width N      DiskANN beam width (default 4)\n"
        "  --io-backend NAME   node-file I/O backend: memory|file|"
        "uring\n"
        "                      (default: $ANN_IO_BACKEND or memory)\n"
        "  --io-queue-depth N  in-flight requests per real-I/O batch\n"
        "                      (default: $ANN_IO_QUEUE_DEPTH or 32)\n"
        "  --node-cache-mb N   sector-cache capacity per index (MiB;\n"
        "                      0 = off, default $ANN_NODE_CACHE_MB)\n"
        "  --mem-budget-mb N   DRAM budget for index state; tiers\n"
        "                      above it (PQ codes, IVF payload) spill\n"
        "                      to storage (default $ANN_MEM_BUDGET_MB;\n"
        "                      0 = unlimited)\n"
        "  --warm-nodes N      nodes BFS-warmed from the medoid "
        "(DiskANN\n"
        "                      only, default $ANN_WARM_NODES)\n"
        "  --layout NAME       DiskANN on-disk node placement:\n"
        "                      id-order|packed-bfs (default: "
        "$ANN_LAYOUT\n"
        "                      or id-order)\n"
        "  --drop-caches       drop the sector cache and re-execute\n"
        "                      before every sweep point (cold runs)\n"
        "  --async-beam        pipelined beam search: score nodes as\n"
        "                      their reads land ($ANN_ASYNC_BEAM)\n"
        "  --io-pooled         merge per-query submissions into one\n"
        "                      shared uring ring ($ANN_IO_POOLED)\n"
        "  --duration-ms N     virtual run length (default 2000)\n"
        "  --trace FILE        dump the block trace as CSV\n"
        "  --learn-dump FILE   capture labeled per-hop records "
        "(DiskANN)\n"
        "                      over the query set into an "
        "annlearn-hops\n"
        "                      CSV for tools/anntrain\n"
        "  --learn-model FILE  activate a trained model "
        "(tools/anntrain\n"
        "                      output; default: $ANN_LEARN_MODEL)\n"
        "  --learned-entry     predict per-query entry points with "
        "the\n"
        "                      active model (default: "
        "$ANN_LEARNED_ENTRY)\n"
        "  --early-stop        confidence-gated beam termination\n"
        "                      (default: $ANN_EARLY_STOP)\n"
        "  --help              this message\n");
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

int
runBench(const ann::ArgParser &args)
{
    using namespace ann;
    const std::string setup = args.get("setup", "milvus-diskann");
    const std::string dataset_name = args.get("dataset", "cohere-1m");
    const auto threads =
        parseSizeList("threads", args.get("threads", "1,16,256"));

    // Pick the real-I/O backend before any index is built or loaded
    // (flags override $ANN_IO_BACKEND / $ANN_IO_QUEUE_DEPTH).
    {
        storage::IoOptions io = storage::IoOptions::fromEnv();
        if (args.has("io-backend")) {
            const std::string name = args.get("io-backend", "memory");
            ANN_CHECK(storage::ioBackendKindFromName(name, &io.kind),
                      "unknown --io-backend (memory|file|uring)");
        }
        if (args.has("io-queue-depth"))
            io.queue_depth = static_cast<unsigned>(
                std::max<std::int64_t>(1,
                                       args.getInt("io-queue-depth",
                                                   32)));
        if (args.has("node-cache-mb"))
            io.node_cache.capacity_bytes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("node-cache-mb", 0))) *
                (1u << 20);
        if (args.has("warm-nodes"))
            io.node_cache.warm_nodes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("warm-nodes", 0)));
        if (args.has("mem-budget-mb"))
            io.mem_budget_bytes =
                static_cast<std::size_t>(std::max<std::int64_t>(
                    0, args.getInt("mem-budget-mb", 0))) *
                (1u << 20);
        storage::setDefaultIoOptions(io);
        if (io.kind != storage::IoBackendKind::Memory)
            std::printf("io backend: %s (queue depth %u, node cache "
                        "%zu MiB + %zu warm nodes)\n",
                        storage::ioBackendKindName(io.kind),
                        io.queue_depth,
                        io.node_cache.capacity_bytes >> 20,
                        io.node_cache.warm_nodes);
    }

    if (args.flag("async-beam"))
        storage::setAsyncBeamEnabled(true);
    if (args.flag("io-pooled"))
        storage::setIoPooledEnabled(true);

    // Resolve the on-disk layout before prepareEngine builds or loads
    // any DiskANN segment; the flag overrides $ANN_LAYOUT.
    if (args.has("layout")) {
        const std::string name = args.get("layout", "default");
        LayoutPolicy policy = LayoutPolicy::Default;
        ANN_CHECK(layoutPolicyFromName(name, &policy),
                  "unknown --layout '", name,
                  "' (valid: id-order|packed-bfs)");
        setDefaultLayoutPolicy(policy);
    }

    // Learned-policy setup before any query runs: activate a trained
    // model and/or flip the toggles (flags OR into the env defaults).
    if (args.has("learn-model"))
        learn::setActiveModel(std::make_shared<const learn::Model>(
            learn::Model::loadFile(args.get("learn-model", ""))));
    if (args.flag("learned-entry"))
        learn::setLearnedEntryEnabled(true);
    if (args.flag("early-stop"))
        learn::setEarlyStopEnabled(true);

    std::printf("loading %s and preparing %s...\n",
                dataset_name.c_str(), setup.c_str());
    const auto build_start = std::chrono::steady_clock::now();
    const auto dataset = workload::loadOrGenerate(dataset_name);
    auto engine = core::prepareEngine(setup, dataset);
    const double build_s = secondsSince(build_start);

    // Tuned defaults, overridden by explicit options.
    const auto warm_start = std::chrono::steady_clock::now();
    engine::SearchSettings settings =
        core::tunedSettings(*engine, dataset, 0.9).settings;
    const double warm_s = secondsSince(warm_start);
    settings.k = static_cast<std::size_t>(
        args.getInt("k", static_cast<std::int64_t>(settings.k)));
    if (args.has("nprobe"))
        settings.nprobe =
            static_cast<std::size_t>(args.getInt("nprobe", 8));
    if (args.has("ef-search"))
        settings.ef_search =
            static_cast<std::size_t>(args.getInt("ef-search", 50));
    if (args.has("search-list"))
        settings.search_list =
            static_cast<std::size_t>(args.getInt("search-list", 10));
    settings.beam_width = static_cast<std::size_t>(
        args.getInt("beam-width",
                    static_cast<std::int64_t>(settings.beam_width)));

    core::ReplayConfig config = core::paperTestbed();
    config.duration_ns =
        static_cast<SimTime>(args.getInt("duration-ms", 2000)) *
        1'000'000ULL;
    core::BenchRunner runner(config);
    if (args.has("exec-threads"))
        runner.execOptions().threads =
            static_cast<std::size_t>(args.getInt("exec-threads", 0));
    if (args.flag("verify-exec"))
        runner.execOptions().verify = true;
    if (args.flag("pin-threads"))
        ThreadPool::setPinByDefault(true);

    TextTable table(setup + " on " + dataset_name);
    table.setHeader({"threads", "QPS", "mean (us)", "P99 (us)",
                     "P99.9 (us)", "recall@10", "CPU %", "read MiB/s",
                     "MiB/query", "eff QD", "hit %", "MiB saved",
                     "res MiB", "peak RSS MiB", "build (s)",
                     "warm (s)", "measure (s)"});
    const bool want_trace = args.has("trace");
    const bool drop_caches = args.flag("drop-caches");
    bool first_row = true;
    for (const std::size_t t : threads) {
        if (drop_caches) {
            // Cold point: empty the dynamic sector cache and force a
            // fresh real execution (memoized traces would otherwise
            // skip the I/O entirely).
            engine->dropNodeCache();
            runner.clearTraceCache();
        }
        const auto measure_start = std::chrono::steady_clock::now();
        // Bracket the measure phase with gauge snapshots: the column
        // reports the mean in-flight reads the workload actually kept
        // on the backend (effective QD), not the configured window.
        const storage::IoGaugeSnapshot gauge_before =
            storage::ioGaugeSnapshot();
        const auto m = runner.measure(*engine, dataset, settings, t,
                                      want_trace);
        const double eff_qd =
            storage::ioGaugeSnapshot().meanDepthSince(gauge_before);
        const double measure_s = secondsSince(measure_start);
        const double mib_per_query =
            m.replay.completed
                ? static_cast<double>(m.replay.read_bytes) /
                      (1024.0 * 1024.0) /
                      static_cast<double>(m.replay.completed)
                : 0.0;
        table.addRow({std::to_string(t), core::fmtQps(m.replay),
                      m.replay.oom
                          ? "OOM"
                          : formatDouble(m.replay.mean_latency_us, 0),
                      core::fmtP99(m.replay),
                      core::fmtP999(m.replay),
                      core::fmtRecall(m.recall),
                      core::fmtCpuPct(m.replay),
                      core::fmtMib(m.replay.read_bw_mib),
                      formatDouble(mib_per_query, 3),
                      eff_qd > 0.0 ? formatDouble(eff_qd, 2) : "-",
                      core::fmtHitRate(m.cache),
                      core::fmtMibSaved(m.cache),
                      formatDouble(
                          static_cast<double>(engine->memoryBytes()) /
                              (1024.0 * 1024.0),
                          1),
                      formatDouble(static_cast<double>(peakRssBytes()) /
                                       (1024.0 * 1024.0),
                                   1),
                      // Build/warm happen once; charge them to the
                      // first sweep point so row sums stay honest.
                      first_row ? formatDouble(build_s, 2) : "-",
                      first_row ? formatDouble(warm_s, 2) : "-",
                      formatDouble(measure_s, 2)});
        first_row = false;
        if (want_trace && t == threads.back() && !m.replay.oom) {
            storage::BlockTracer tracer;
            for (const auto &event : m.replay.trace)
                tracer.record(event);
            tracer.writeCsv(args.get("trace", "trace.csv"));
            const auto summary =
                storage::summarizeTrace(m.replay.trace);
            std::printf("trace: %llu reads (%.4f%% 4 KiB) -> %s\n",
                        static_cast<unsigned long long>(
                            summary.read_requests),
                        summary.fraction_4k_reads * 100.0,
                        args.get("trace", "trace.csv").c_str());
        }
    }
    table.print(std::cout);

    if (args.has("learn-dump")) {
        // Training-data export: re-run the query set with the
        // process-wide hop sink armed, then dump the labeled records.
        const std::string path = args.get("learn-dump", "hops.csv");
        learn::HopSink &sink = learn::HopSink::instance();
        sink.setEnabled(true);
        core::runAllQueries(*engine, dataset, settings,
                            dataset.num_queries);
        sink.setEnabled(false);
        const auto traces = sink.drain();
        std::size_t records = 0;
        for (const auto &t : traces)
            records += t.hops.size();
        learn::writeHopCsvFile(path, traces);
        if (records == 0)
            std::fprintf(stderr,
                         "annbench: --learn-dump captured no hop "
                         "records (does setup '%s' include a DiskANN "
                         "segment?)\n",
                         setup.c_str());
        else
            std::printf(
                "learn dump: %zu queries, %zu hop records -> %s\n",
                traces.size(), records, path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ann;
    ArgParser args({"setup", "dataset", "threads", "exec-threads", "k",
                    "nprobe", "ef-search", "search-list", "beam-width",
                    "io-backend", "io-queue-depth", "node-cache-mb",
                    "mem-budget-mb", "warm-nodes", "layout",
                    "duration-ms", "trace",
                    "learn-dump", "learn-model"},
                   {"help", "verify-exec", "drop-caches",
                    "pin-threads", "learned-entry", "early-stop",
                    "async-beam", "io-pooled"});
    try {
        args.parse(argc, argv);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        printUsage();
        return 1;
    }
    if (args.flag("help")) {
        printUsage();
        return 0;
    }
    try {
        return runBench(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "annbench: %s\n", e.what());
        return 1;
    }
}
