/**
 * @file
 * Tests for the learned I/O-avoidance subsystem (src/learn): feature
 * extraction, future-inclusive labeling and stall derivation in
 * samplesFromTraces, model training / serialization round-trips,
 * runtime policy knobs, the HopSink capture path, and the contract
 * that a loaded model with the toggles off leaves search results
 * bit-identical.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.hh"
#include "index/diskann_index.hh"
#include "learn/features.hh"
#include "learn/hoplog.hh"
#include "learn/model.hh"
#include "learn/policy.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::makeClusteredData;
using testutil::TestData;

learn::HopRecord
record(std::uint32_t hop, float adc, float best, float kth,
       std::uint8_t reached)
{
    learn::HopRecord h;
    h.node = hop;
    h.hop = hop;
    h.adc = adc;
    h.best_adc = best;
    h.kth_adc = kth;
    h.entry_adc = 4.0f;
    h.reached_topk = reached;
    return h;
}

TEST(FeaturizeTest, RatiosClampAndStallSaturates)
{
    ASSERT_EQ(learn::kFeatureCount, 7u);
    learn::CandidateSignals s;
    s.adc = 2.0f;
    s.best_adc = 1.0f;
    s.kth_adc = 4.0f;
    s.entry_adc = 8.0f;
    s.hop = 3;
    s.stall = 2;
    const learn::FeatureVec x = learn::featurize(s);
    EXPECT_FLOAT_EQ(x[0], 0.5f);  // adc / kth
    EXPECT_FLOAT_EQ(x[1], 0.25f); // adc / entry
    EXPECT_NEAR(x[2], 1.0f / 3.0f, 1e-6);
    EXPECT_FLOAT_EQ(x[3], 2.0f); // adc / best
    EXPECT_FLOAT_EQ(x[4], 3.0f / 16.0f);
    EXPECT_FLOAT_EQ(x[5], 0.25f);
    EXPECT_FLOAT_EQ(x[6], 0.25f); // stall / 8

    // Degenerate inputs clamp instead of blowing up.
    s.best_adc = 0.0f;
    s.kth_adc = 0.0f;
    s.entry_adc = 0.0f;
    const learn::FeatureVec y = learn::featurize(s);
    for (std::size_t f = 0; f < 4; ++f) {
        EXPECT_GE(y[f], 0.0f) << f;
        EXPECT_LE(y[f], 8.0f) << f;
    }

    // The stall feature saturates at 32 hops.
    s.stall = 1000;
    EXPECT_FLOAT_EQ(learn::featurize(s)[6], 4.0f);
}

TEST(SamplesFromTracesTest, LabelsAreFutureInclusive)
{
    // Expansions at hops 0..4; the last top-k hit happens at hop 2.
    // Every record at hop <= 2 is positive ("useful work remained"),
    // later ones negative — including the hop-3 record between hits
    // in per-node terms.
    learn::QueryHopTrace t;
    t.hops = {record(0, 3, 3, 9, 1), record(1, 4, 3, 8, 0),
              record(2, 5, 3, 8, 1), record(3, 6, 3, 8, 0),
              record(4, 7, 3, 8, 0)};
    const auto samples = learn::samplesFromTraces({t});
    ASSERT_EQ(samples.size(), 5u);
    EXPECT_FLOAT_EQ(samples[0].y, 1.0f);
    EXPECT_FLOAT_EQ(samples[1].y, 1.0f);
    EXPECT_FLOAT_EQ(samples[2].y, 1.0f);
    EXPECT_FLOAT_EQ(samples[3].y, 0.0f);
    EXPECT_FLOAT_EQ(samples[4].y, 0.0f);

    // A trace with no top-k hits at all is all-negative.
    for (auto &h : t.hops)
        h.reached_topk = 0;
    for (const auto &s : learn::samplesFromTraces({t}))
        EXPECT_FLOAT_EQ(s.y, 0.0f);
}

TEST(SamplesFromTracesTest, StallCounterTracksKthImprovement)
{
    // kth_adc per hop: 10, 10, 8, 8, 8 -> the frontier improves at
    // hops 0 and 2, so the stall counter reads 0, 1, 0, 1, 2.
    learn::QueryHopTrace t;
    t.hops = {record(0, 3, 3, 10, 1), record(1, 3, 3, 10, 0),
              record(2, 3, 3, 8, 0), record(3, 3, 3, 8, 0),
              record(4, 3, 3, 8, 0)};
    const auto samples = learn::samplesFromTraces({t});
    ASSERT_EQ(samples.size(), 5u);
    const float expected_stall[] = {0.0f, 1.0f, 0.0f, 1.0f, 2.0f};
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(samples[i].x[6], expected_stall[i] / 8.0f)
            << "hop " << i;
}

std::vector<learn::Sample>
separableSamples(std::size_t n)
{
    // Positives sit at x0 = 0.5, negatives at x0 = 2.0; every other
    // feature is constant, so feature 0 alone decides the class.
    std::vector<learn::Sample> samples(n);
    for (std::size_t i = 0; i < n; ++i) {
        learn::Sample &s = samples[i];
        s.x.fill(0.5f);
        s.x[0] = i % 2 == 0 ? 0.5f : 2.0f;
        s.y = i % 2 == 0 ? 1.0f : 0.0f;
    }
    return samples;
}

TEST(ModelTest, TrainsSeparableDataBothArchitectures)
{
    const auto samples = separableSamples(200);
    learn::FeatureVec pos = samples[0].x;
    learn::FeatureVec neg = samples[1].x;
    for (const std::size_t hidden : {std::size_t{0}, std::size_t{4}}) {
        learn::TrainParams params;
        params.hidden = hidden;
        params.epochs = 80;
        params.seed = 7;
        const learn::Model model = learn::Model::train(samples, params);
        ASSERT_TRUE(model.valid()) << hidden << " hidden units";
        EXPECT_EQ(model.hiddenUnits(), hidden);
        EXPECT_GT(model.predict(pos), 0.8f) << hidden;
        EXPECT_LT(model.predict(neg), 0.2f) << hidden;
        // Deterministic per seed.
        const learn::Model again = learn::Model::train(samples, params);
        EXPECT_FLOAT_EQ(model.predict(pos), again.predict(pos));
    }
}

TEST(ModelTest, SaveLoadRoundTripPreservesPredictions)
{
    const auto samples = separableSamples(120);
    learn::TrainParams params;
    params.hidden = 4;
    params.epochs = 50;
    learn::Model model = learn::Model::train(samples, params);
    model.setThreshold(0.123f);

    std::stringstream buf;
    model.save(buf);
    const learn::Model loaded = learn::Model::load(buf);
    ASSERT_TRUE(loaded.valid());
    EXPECT_EQ(loaded.hiddenUnits(), 4u);
    EXPECT_FLOAT_EQ(loaded.threshold(), 0.123f);
    for (const auto &s : samples)
        EXPECT_NEAR(model.predict(s.x), loaded.predict(s.x), 1e-4)
            << "prediction drift through text round-trip";
}

TEST(ModelTest, PositivePercentileIsMonotonic)
{
    const auto samples = separableSamples(100);
    learn::TrainParams params;
    params.epochs = 50;
    const learn::Model model = learn::Model::train(samples, params);
    const float p10 = model.positivePercentile(samples, 10.0);
    const float p50 = model.positivePercentile(samples, 50.0);
    const float p90 = model.positivePercentile(samples, 90.0);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p90);
    EXPECT_GE(p10, 0.0f);
    EXPECT_LE(p90, 1.0f);
}

TEST(HopCsvTest, WriteReadRoundTrip)
{
    learn::QueryHopTrace t;
    t.query_seq = 3;
    t.query_code = {0x00, 0xab, 0xff};
    t.hops = {record(0, 1.5f, 1.5f, 2.25f, 1),
              record(1, 3.5f, 1.5f, 2.0f, 0)};
    // An index without PQ leaves the query code empty; the reader
    // must cope with the resulting trailing empty CSV field.
    learn::QueryHopTrace bare;
    bare.query_seq = 4;
    bare.hops = {record(0, 1.0f, 1.0f, 2.0f, 1)};
    std::stringstream buf;
    learn::writeHopCsv(buf, {t, bare});
    const auto traces = learn::readHopCsv(buf);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_TRUE(traces[1].query_code.empty());
    ASSERT_EQ(traces[1].hops.size(), 1u);
    EXPECT_EQ(traces[0].query_seq, 3u);
    EXPECT_EQ(traces[0].query_code, t.query_code);
    ASSERT_EQ(traces[0].hops.size(), 2u);
    EXPECT_EQ(traces[0].hops[1].hop, 1u);
    EXPECT_FLOAT_EQ(traces[0].hops[1].adc, 3.5f);
    EXPECT_FLOAT_EQ(traces[0].hops[0].kth_adc, 2.25f);
    EXPECT_EQ(traces[0].hops[0].reached_topk, 1);
    EXPECT_EQ(traces[0].hops[1].reached_topk, 0);
}

TEST(HopCsvTest, RejectsBadHeader)
{
    std::stringstream buf("not a hop log\n");
    EXPECT_THROW(learn::readHopCsv(buf), FatalError);
}

TEST(HopSinkTest, CaptureIsExplicitAndDrainEmpties)
{
    learn::HopSink &sink = learn::HopSink::instance();
    EXPECT_FALSE(sink.enabled());
    sink.setEnabled(true);
    EXPECT_TRUE(sink.enabled());
    const std::uint64_t seq = sink.nextSeq();
    EXPECT_EQ(sink.nextSeq(), seq + 1);
    learn::QueryHopTrace t;
    t.query_seq = seq;
    t.hops = {record(0, 1, 1, 2, 0)};
    sink.append(t);
    sink.append(t);
    EXPECT_EQ(sink.size(), 2u);
    const auto drained = sink.drain();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(sink.size(), 0u);
    sink.setEnabled(false);
}

TEST(PolicyTest, TogglesDefaultOffAndKnobsFloor)
{
    // Both learned behaviors must default off (no env set in tests).
    EXPECT_FALSE(learn::learnedEntryEnabled());
    EXPECT_FALSE(learn::earlyStopEnabled());

    learn::setLearnedEntryEnabled(true);
    learn::setEarlyStopEnabled(true);
    EXPECT_TRUE(learn::learnedEntryEnabled());
    EXPECT_TRUE(learn::earlyStopEnabled());
    learn::setLearnedEntryEnabled(false);
    learn::setEarlyStopEnabled(false);

    // Patience and the candidate cap floor at 1; min hops takes 0.
    const std::size_t patience = learn::earlyStopPatience();
    learn::setEarlyStopPatience(0);
    EXPECT_EQ(learn::earlyStopPatience(), 1u);
    learn::setEarlyStopPatience(patience);

    const std::size_t cap = learn::entryCandidateCap();
    learn::setEntryCandidateCap(0);
    EXPECT_EQ(learn::entryCandidateCap(), 1u);
    learn::setEntryCandidateCap(cap);

    const std::size_t min_hops = learn::earlyStopMinHops();
    learn::setEarlyStopMinHops(0);
    EXPECT_EQ(learn::earlyStopMinHops(), 0u);
    learn::setEarlyStopMinHops(min_hops);

    const float override_t = learn::earlyStopThresholdOverride();
    learn::setEarlyStopThresholdOverride(0.25f);
    EXPECT_FLOAT_EQ(learn::earlyStopThresholdOverride(), 0.25f);
    learn::setEarlyStopThresholdOverride(override_t);
}

TEST(PolicyTest, ActiveModelSlotIsSettable)
{
    const auto samples = separableSamples(60);
    learn::TrainParams params;
    params.epochs = 30;
    auto model = std::make_shared<const learn::Model>(
        learn::Model::train(samples, params));
    learn::setActiveModel(model);
    EXPECT_EQ(learn::activeModel().get(), model.get());
    learn::setActiveModel(nullptr);
    EXPECT_EQ(learn::activeModel(), nullptr);
}

TEST(LearnedSearchTest, LoadedModelWithTogglesOffIsBitIdentical)
{
    // The hard contract behind $ANN_LEARNED_ENTRY / $ANN_EARLY_STOP
    // defaulting off: publishing a model must not perturb search at
    // all until a toggle is flipped — and flipping one must still
    // return k well-formed neighbours.
    const TestData data = makeClusteredData(600, 8, 24, 99);
    DiskAnnBuildParams build;
    build.graph.max_degree = 16;
    build.graph.build_list = 32;
    build.pq.m = 8;
    build.pq.ksub = 256;
    DiskAnnIndex index;
    index.build(data.baseView(), build);

    DiskAnnSearchParams params;
    params.k = 5;
    params.search_list = 24;
    params.beam_width = 2;

    std::vector<SearchResult> baseline;
    for (std::size_t q = 0; q < data.num_queries; ++q)
        baseline.push_back(index.search(data.queryView().row(q), params));

    const auto samples = separableSamples(80);
    learn::TrainParams tp;
    tp.hidden = 4;
    tp.epochs = 30;
    learn::setActiveModel(std::make_shared<const learn::Model>(
        learn::Model::train(samples, tp)));

    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const SearchResult got =
            index.search(data.queryView().row(q), params);
        EXPECT_EQ(got, baseline[q]) << "query " << q;
    }

    learn::setLearnedEntryEnabled(true);
    learn::setEarlyStopEnabled(true);
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const SearchResult got =
            index.search(data.queryView().row(q), params);
        ASSERT_EQ(got.size(), params.k) << "query " << q;
        for (std::size_t i = 1; i < got.size(); ++i)
            EXPECT_LE(got[i - 1].distance, got[i].distance);
    }
    learn::setLearnedEntryEnabled(false);
    learn::setEarlyStopEnabled(false);
    learn::setActiveModel(nullptr);
}

} // namespace
} // namespace ann
