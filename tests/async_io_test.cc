/**
 * @file
 * Tests for the async submit/poll I/O pipeline: the IoQueue contract
 * on the emulated backends, the SectorCache single-flight layer, and
 * the headline invariant of $ANN_ASYNC_BEAM — completion order must
 * never change a result bit or a recorded trace, even when an
 * adversarial queue delivers completions backwards and in dribbles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "index/diskann_index.hh"
#include "index/search_trace.hh"
#include "index/spann_index.hh"
#include "storage/io_backend.hh"
#include "storage/node_cache.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::TestData;
using testutil::groundTruth;
using testutil::makeClusteredData;

/** Shared spill directory, outside the checkout, removed at exit. */
const std::string &
testSpillDir()
{
    static const testutil::TempDir dir("async_io_test_spill");
    return dir.path();
}

/** Restores every async/IO toggle a test flips. */
struct ToggleGuard
{
    ~ToggleGuard()
    {
        storage::setAsyncBeamEnabled(false);
        storage::setAsyncShuffleDelivery(false);
        storage::setIoPooledEnabled(false);
        storage::setSingleFlightEnabled(true);
    }
};

std::vector<std::uint8_t>
testImage(std::size_t sectors, std::uint64_t seed)
{
    std::vector<std::uint8_t> image(sectors * storage::kIoSectorBytes);
    Rng rng(seed);
    for (auto &byte : image)
        byte = static_cast<std::uint8_t>(rng.next() & 0xff);
    return image;
}

std::unique_ptr<storage::IoBackend>
buildBackend(storage::IoBackendKind kind,
             const std::vector<std::uint8_t> &image)
{
    storage::IoOptions options;
    options.kind = kind;
    options.queue_depth = 8;
    options.spill_dir = testSpillDir();
    auto sink = makeIoSink(options, image.size());
    sink->append(image.data(), image.size());
    return sink->finish();
}

// ------------------------------------------------------ queue contract

TEST(IoQueueTest, FileQueueServesExactBytes)
{
    ToggleGuard guard;
    const auto image = testImage(64, 7);
    auto backend = buildBackend(storage::IoBackendKind::File, image);
    auto queue = backend->openQueue();
    ASSERT_NE(queue, nullptr);

    storage::AlignedBuffer buf;
    std::uint8_t *out = buf.ensure(image.size());
    std::memset(out, 0, image.size());
    std::vector<storage::IoRequest> requests;
    std::vector<std::uint64_t> tags;
    for (std::uint64_t s = 0; s < 64; ++s) {
        requests.push_back(
            {s, 1, out + s * storage::kIoSectorBytes});
        tags.push_back(1000 + s);
    }
    queue->submitBatch(requests.data(), requests.size(), tags.data());

    std::vector<std::uint64_t> seen;
    std::uint64_t got[16];
    while (seen.size() < tags.size()) {
        const std::size_t n = queue->pollCompletions(got, 16, 1);
        ASSERT_GT(n, 0u);
        seen.insert(seen.end(), got, got + n);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, tags);
    EXPECT_EQ(std::memcmp(out, image.data(), image.size()), 0);
}

TEST(IoQueueTest, MemoryBackendFallsBackToSyncQueue)
{
    ToggleGuard guard;
    const auto image = testImage(8, 3);
    auto backend =
        buildBackend(storage::IoBackendKind::Memory, image);
    auto queue = backend->openQueue();
    ASSERT_NE(queue, nullptr);

    storage::AlignedBuffer buf;
    std::uint8_t *out = buf.ensure(image.size());
    const storage::IoRequest req{0, 8, out};
    const std::uint64_t tag = 42;
    queue->submitBatch(&req, 1, &tag);
    std::uint64_t got = 0;
    ASSERT_EQ(queue->pollCompletions(&got, 1, 1), 1u);
    EXPECT_EQ(got, 42u);
    EXPECT_EQ(std::memcmp(out, image.data(), image.size()), 0);
}

TEST(IoQueueTest, ShuffledDeliveryStillCompletesEverything)
{
    ToggleGuard guard;
    storage::setAsyncShuffleDelivery(true);
    const auto image = testImage(32, 11);
    auto backend = buildBackend(storage::IoBackendKind::File, image);
    auto queue = backend->openQueue();

    storage::AlignedBuffer buf;
    std::uint8_t *out = buf.ensure(image.size());
    std::memset(out, 0, image.size());
    std::vector<storage::IoRequest> requests;
    std::vector<std::uint64_t> tags;
    for (std::uint64_t s = 0; s < 32; ++s) {
        requests.push_back(
            {s, 1, out + s * storage::kIoSectorBytes});
        tags.push_back(s);
    }
    queue->submitBatch(requests.data(), requests.size(), tags.data());
    std::vector<std::uint64_t> seen;
    std::uint64_t got[8];
    while (seen.size() < tags.size()) {
        const std::size_t n = queue->pollCompletions(got, 8, 1);
        ASSERT_GT(n, 0u);
        seen.insert(seen.end(), got, got + n);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, tags);
    // The adversarial order never changes the bytes.
    EXPECT_EQ(std::memcmp(out, image.data(), image.size()), 0);
}

// ------------------------------------------------------- single flight

TEST(SingleFlightTest, SharerAttachesAndDedupes)
{
    ToggleGuard guard;
    storage::NodeCacheConfig config;
    config.capacity_bytes = 64 * storage::kIoSectorBytes;
    storage::SectorCache cache(config);

    std::vector<std::uint8_t> bytes(storage::kIoSectorBytes, 0xAB);
    std::vector<std::uint8_t> owner_buf(storage::kIoSectorBytes);
    std::vector<std::uint8_t> sharer_buf(storage::kIoSectorBytes, 0);

    ASSERT_EQ(cache.beginFetch(5, owner_buf.data()),
              storage::FetchClaim::Owner);
    ASSERT_EQ(cache.beginFetch(5, sharer_buf.data()),
              storage::FetchClaim::Shared);
    cache.publishFetch(5, bytes.data());
    ASSERT_EQ(cache.waitFetch(5, sharer_buf.data()),
              storage::FetchStatus::Ready);
    EXPECT_EQ(std::memcmp(sharer_buf.data(), bytes.data(),
                          storage::kIoSectorBytes),
              0);
    EXPECT_EQ(cache.stats().ios_deduped, 1u);
    EXPECT_EQ(cache.stats().dedupBytesSaved(),
              storage::kIoSectorBytes);
    // The publish also admitted the sector.
    std::vector<std::uint8_t> hit(storage::kIoSectorBytes);
    EXPECT_TRUE(cache.lookup(5, hit.data()));
}

TEST(SingleFlightTest, LateSharerGetsCachedClaim)
{
    ToggleGuard guard;
    storage::NodeCacheConfig config;
    config.capacity_bytes = 64 * storage::kIoSectorBytes;
    storage::SectorCache cache(config);

    std::vector<std::uint8_t> bytes(storage::kIoSectorBytes, 0x5C);
    std::vector<std::uint8_t> owner_buf(storage::kIoSectorBytes);
    std::vector<std::uint8_t> sharer_buf(storage::kIoSectorBytes);
    std::vector<std::uint8_t> late_buf(storage::kIoSectorBytes, 0);

    ASSERT_EQ(cache.beginFetch(9, owner_buf.data()),
              storage::FetchClaim::Owner);
    // A waiter keeps the published flight entry alive...
    ASSERT_EQ(cache.beginFetch(9, sharer_buf.data()),
              storage::FetchClaim::Shared);
    cache.publishFetch(9, bytes.data());
    // ...so a claim between publish and the waiter's pickup sees the
    // completed read and gets the bytes immediately.
    EXPECT_EQ(cache.beginFetch(9, late_buf.data()),
              storage::FetchClaim::Cached);
    EXPECT_EQ(std::memcmp(late_buf.data(), bytes.data(),
                          storage::kIoSectorBytes),
              0);
    EXPECT_EQ(cache.waitFetch(9, sharer_buf.data()),
              storage::FetchStatus::Ready);
    EXPECT_EQ(cache.stats().ios_deduped, 2u);
}

TEST(SingleFlightTest, CancelWakesSharers)
{
    ToggleGuard guard;
    storage::NodeCacheConfig config;
    config.capacity_bytes = 64 * storage::kIoSectorBytes;
    storage::SectorCache cache(config);

    std::vector<std::uint8_t> owner_buf(storage::kIoSectorBytes);
    std::vector<std::uint8_t> sharer_buf(storage::kIoSectorBytes);
    ASSERT_EQ(cache.beginFetch(3, owner_buf.data()),
              storage::FetchClaim::Owner);
    ASSERT_EQ(cache.beginFetch(3, sharer_buf.data()),
              storage::FetchClaim::Shared);
    cache.cancelFetch(3);
    EXPECT_EQ(cache.waitFetch(3, sharer_buf.data()),
              storage::FetchStatus::Cancelled);
    EXPECT_EQ(cache.stats().ios_deduped, 0u);
    // The sector is claimable again after the cancellation drains.
    EXPECT_EQ(cache.beginFetch(3, owner_buf.data()),
              storage::FetchClaim::Owner);
    cache.cancelFetch(3);
}

TEST(SingleFlightTest, DisabledLayerAlwaysGrantsOwnership)
{
    ToggleGuard guard;
    storage::setSingleFlightEnabled(false);
    storage::NodeCacheConfig config;
    config.capacity_bytes = 64 * storage::kIoSectorBytes;
    storage::SectorCache cache(config);

    std::vector<std::uint8_t> bytes(storage::kIoSectorBytes, 0x11);
    std::vector<std::uint8_t> buf(storage::kIoSectorBytes);
    EXPECT_EQ(cache.beginFetch(7, buf.data()),
              storage::FetchClaim::Owner);
    EXPECT_EQ(cache.beginFetch(7, buf.data()),
              storage::FetchClaim::Owner);
    // publishFetch degenerates to admit().
    cache.publishFetch(7, bytes.data());
    EXPECT_TRUE(cache.lookup(7, buf.data()));
    EXPECT_EQ(cache.stats().ios_deduped, 0u);
}

/**
 * TSan target: hammer the flight map from many threads with live
 * mutations — owners publishing or cancelling while sharers attach,
 * wait, and retry — over a small sector range so every path collides.
 */
TEST(SingleFlightTest, ConcurrentFlightsUnderMutation)
{
    ToggleGuard guard;
    storage::NodeCacheConfig config;
    config.capacity_bytes = 64 * storage::kIoSectorBytes;
    storage::SectorCache cache(config);

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kRounds = 400;
    constexpr std::uint64_t kSectors = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            Rng rng(900 + t);
            std::vector<std::uint8_t> bytes(storage::kIoSectorBytes);
            std::vector<std::uint8_t> buf(storage::kIoSectorBytes);
            for (std::size_t r = 0; r < kRounds; ++r) {
                const std::uint64_t sector = rng.next() % kSectors;
                // The sector's canonical bytes: a pure function of
                // the sector, as with a real immutable node file.
                std::memset(bytes.data(),
                            static_cast<int>(sector * 31 + 1),
                            bytes.size());
                if (cache.lookup(sector, buf.data())) {
                    ASSERT_EQ(buf[0], bytes[0]);
                    continue;
                }
                switch (cache.beginFetch(sector, buf.data())) {
                case storage::FetchClaim::Owner:
                    if (rng.next() % 8 == 0) {
                        cache.cancelFetch(sector);
                    } else {
                        cache.publishFetch(sector, bytes.data());
                    }
                    break;
                case storage::FetchClaim::Shared:
                    switch (cache.waitFetch(sector, buf.data())) {
                    case storage::FetchStatus::Ready:
                        ASSERT_EQ(buf[0], bytes[0]);
                        break;
                    case storage::FetchStatus::Cancelled:
                        break; // a real caller would read it itself
                    case storage::FetchStatus::Timeout:
                        FAIL() << "waitFetch returned Timeout";
                    }
                    break;
                case storage::FetchClaim::Cached:
                    ASSERT_EQ(buf[0], bytes[0]);
                    break;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.lookups, kThreads * kRounds);
}

// --------------------------------------- completion-order independence

class AsyncBeamFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(1200, 20, 32, 777));
        index_ = new DiskAnnIndex();
        DiskAnnBuildParams params;
        params.graph.max_degree = 24;
        params.graph.build_list = 48;
        params.pq.m = 16;
        params.pq.ksub = 256;
        index_->build(data_->baseView(), params);
    }
    static void
    TearDownTestSuite()
    {
        delete data_;
        delete index_;
        data_ = nullptr;
        index_ = nullptr;
    }

    static TestData *data_;
    static DiskAnnIndex *index_;
};

TestData *AsyncBeamFixture::data_ = nullptr;
DiskAnnIndex *AsyncBeamFixture::index_ = nullptr;

/**
 * The headline contract: async pipelined beam search under an
 * adversarial completion order (descending tags, dribbled delivery)
 * yields bit-identical results AND identical recorded hop traces to
 * the memory-resident reference.
 */
TEST_F(AsyncBeamFixture, ShuffledCompletionsAreBitIdentical)
{
    ToggleGuard guard;
    DiskAnnSearchParams params;
    params.search_list = 32;
    params.beam_width = 4;
    params.k = 10;

    // Reference: memory image, synchronous.
    std::vector<SearchResult> expected;
    std::vector<std::vector<SearchStep>> expected_steps;
    for (std::size_t q = 0; q < data_->num_queries; ++q) {
        SearchTraceRecorder recorder;
        expected.push_back(index_->search(data_->queryView().row(q),
                                          params, &recorder));
        expected_steps.push_back(recorder.takeSteps());
    }

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = testSpillDir();
    file_mode.node_cache.capacity_bytes =
        64 * storage::kIoSectorBytes;
    index_->setIoMode(file_mode);
    storage::setAsyncBeamEnabled(true);
    storage::setAsyncShuffleDelivery(true);

    for (std::size_t q = 0; q < data_->num_queries; ++q) {
        SearchTraceRecorder recorder;
        const auto got = index_->search(data_->queryView().row(q),
                                        params, &recorder);
        ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].id, expected[q][i].id) << "query " << q;
            EXPECT_EQ(got[i].distance, expected[q][i].distance)
                << "query " << q;
        }
        // Hop traces: same step count, same CPU ops per step. (Read
        // shapes differ only by what the cache absorbed; the FIRST
        // query of a cold cache must match the reference exactly.)
        const auto steps = recorder.takeSteps();
        ASSERT_EQ(steps.size(), expected_steps[q].size())
            << "query " << q;
        for (std::size_t s = 0; s < steps.size(); ++s) {
            EXPECT_EQ(steps[s].cpu.hops,
                      expected_steps[q][s].cpu.hops);
            EXPECT_EQ(steps[s].cpu.quant_distances,
                      expected_steps[q][s].cpu.quant_distances)
                << "query " << q << " step " << s;
            EXPECT_EQ(steps[s].cpu.full_distances,
                      expected_steps[q][s].cpu.full_distances)
                << "query " << q << " step " << s;
        }
    }

    storage::IoOptions memory_mode;
    memory_mode.kind = storage::IoBackendKind::Memory;
    index_->setIoMode(memory_mode);
}

/** Same contract with the sector cache disabled (no single-flight,
 *  no hit path): pure queue pipelining. */
TEST_F(AsyncBeamFixture, AsyncWithoutCacheMatchesReference)
{
    ToggleGuard guard;
    DiskAnnSearchParams params;
    params.search_list = 24;
    params.beam_width = 2;
    params.k = 10;

    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(
            index_->search(data_->queryView().row(q), params));

    std::vector<storage::IoOptions> modes;
    {
        storage::IoOptions file_mode;
        file_mode.kind = storage::IoBackendKind::File;
        file_mode.spill_dir = testSpillDir();
        modes.push_back(file_mode);
        if (storage::uringSupported()) {
            storage::IoOptions uring_mode = file_mode;
            uring_mode.kind = storage::IoBackendKind::Uring;
            modes.push_back(uring_mode);
        }
    }
    storage::setAsyncBeamEnabled(true);
    // Shuffle only perturbs the emulated queues; the native uring
    // queue delivers in device order, itself nondeterministic.
    storage::setAsyncShuffleDelivery(true);

    for (const storage::IoOptions &mode : modes) {
        index_->setIoMode(mode);
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto got =
                index_->search(data_->queryView().row(q), params);
            ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].id, expected[q][i].id)
                    << "query " << q;
                EXPECT_EQ(got[i].distance, expected[q][i].distance)
                    << "query " << q;
            }
        }
    }

    storage::IoOptions memory_mode;
    memory_mode.kind = storage::IoBackendKind::Memory;
    index_->setIoMode(memory_mode);
}

/**
 * TSan target: concurrent async searches over a shared cache — the
 * single-flight map sees live cross-thread attach/publish while the
 * speculative stash and per-query queues run. Every thread must get
 * the memory-reference answer.
 */
TEST_F(AsyncBeamFixture, ConcurrentAsyncSearchesShareFlights)
{
    ToggleGuard guard;
    DiskAnnSearchParams params;
    params.search_list = 32;
    params.beam_width = 4;
    params.k = 10;

    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(
            index_->search(data_->queryView().row(q), params));

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = testSpillDir();
    file_mode.node_cache.capacity_bytes =
        128 * storage::kIoSectorBytes;
    index_->setIoMode(file_mode);
    storage::setAsyncBeamEnabled(true);

    constexpr std::size_t kThreads = 8;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> mismatches{0};
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Lockstep over the same queries maximizes same-sector
            // collisions in the flight map.
            (void)t;
            for (std::size_t q = 0; q < data_->num_queries; ++q) {
                const auto got = index_->search(
                    data_->queryView().row(q), params);
                if (got.size() != expected[q].size()) {
                    mismatches.fetch_add(1);
                    continue;
                }
                for (std::size_t i = 0; i < got.size(); ++i)
                    if (got[i].id != expected[q][i].id ||
                        got[i].distance != expected[q][i].distance)
                        mismatches.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0u);

    storage::IoOptions memory_mode;
    memory_mode.kind = storage::IoBackendKind::Memory;
    index_->setIoMode(memory_mode);
}

/**
 * Pooled submissions ($ANN_IO_POOLED): every per-query queue of the
 * micro-batch funnels into one shared uring ring, so concurrent async
 * searches stress the ring mutex, the per-queue mailboxes, and the
 * any-thread-reaps protocol. Results must still match the reference.
 */
TEST_F(AsyncBeamFixture, PooledRingConcurrentSearches)
{
    if (!storage::uringSupported())
        GTEST_SKIP() << "io_uring unavailable in this environment";
    ToggleGuard guard;
    DiskAnnSearchParams params;
    params.search_list = 32;
    params.beam_width = 4;
    params.k = 10;

    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(
            index_->search(data_->queryView().row(q), params));

    storage::setAsyncBeamEnabled(true);
    storage::setIoPooledEnabled(true);
    storage::IoOptions uring_mode;
    uring_mode.kind = storage::IoBackendKind::Uring;
    uring_mode.spill_dir = testSpillDir();
    uring_mode.node_cache.capacity_bytes =
        128 * storage::kIoSectorBytes;
    // The pooled ring is created by the first openQueue() after the
    // toggle, so setIoMode must come after setIoPooledEnabled.
    index_->setIoMode(uring_mode);

    constexpr std::size_t kThreads = 8;
    std::vector<std::thread> threads;
    std::atomic<std::size_t> mismatches{0};
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t q = 0; q < data_->num_queries; ++q) {
                const auto got = index_->search(
                    data_->queryView().row(q), params);
                if (got.size() != expected[q].size()) {
                    mismatches.fetch_add(1);
                    continue;
                }
                for (std::size_t i = 0; i < got.size(); ++i)
                    if (got[i].id != expected[q][i].id ||
                        got[i].distance != expected[q][i].distance)
                        mismatches.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(mismatches.load(), 0u);

    storage::IoOptions memory_mode;
    memory_mode.kind = storage::IoBackendKind::Memory;
    index_->setIoMode(memory_mode);
}

TEST(SpannAsyncTest, AsyncStoragePhaseIsBitIdentical)
{
    ToggleGuard guard;
    const TestData data = makeClusteredData(1200, 20, 24, 555);
    SpannIndex index;
    SpannBuildParams build;
    build.nlist = 16;
    index.build(data.baseView(), build);

    SpannSearchParams params;
    params.k = 10;
    params.nprobe = 4;
    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data.num_queries; ++q)
        expected.push_back(index.search(data.queryView().row(q),
                                        params));

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = testSpillDir();
    file_mode.node_cache.capacity_bytes =
        32 * storage::kIoSectorBytes;
    index.setIoMode(file_mode);
    storage::setAsyncBeamEnabled(true);
    storage::setAsyncShuffleDelivery(true);

    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const auto got =
            index.search(data.queryView().row(q), params);
        ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].id, expected[q][i].id) << "query " << q;
            EXPECT_EQ(got[i].distance, expected[q][i].distance)
                << "query " << q;
        }
    }
}

} // namespace
} // namespace ann
