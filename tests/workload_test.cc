/**
 * @file
 * Tests for the synthetic workload generator and dataset registry.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hh"
#include "distance/distance.hh"
#include "distance/topk.hh"
#include "workload/generator.hh"
#include "workload/registry.hh"

namespace ann {
namespace {

using workload::Dataset;
using workload::GeneratorSpec;

GeneratorSpec
smallSpec()
{
    GeneratorSpec spec;
    spec.name = "unit-test";
    spec.rows = 400;
    spec.dim = 24;
    spec.num_queries = 20;
    spec.clusters = 8;
    spec.gt_k = 10;
    spec.seed = 99;
    return spec;
}

TEST(GeneratorTest, ShapesAndGroundTruthDepth)
{
    const Dataset data = generateDataset(smallSpec());
    EXPECT_EQ(data.rows, 400u);
    EXPECT_EQ(data.dim, 24u);
    EXPECT_EQ(data.base.size(), 400u * 24u);
    EXPECT_EQ(data.queries.size(), 20u * 24u);
    ASSERT_EQ(data.ground_truth.size(), 20u);
    for (const auto &row : data.ground_truth)
        EXPECT_EQ(row.size(), 10u);
}

TEST(GeneratorTest, VectorsAreUnitNorm)
{
    const Dataset data = generateDataset(smallSpec());
    for (std::size_t r = 0; r < data.rows; r += 37)
        EXPECT_NEAR(vectorNorm(data.baseView().row(r), data.dim), 1.0f,
                    1e-4f);
    for (std::size_t q = 0; q < data.num_queries; ++q)
        EXPECT_NEAR(vectorNorm(data.query(q), data.dim), 1.0f, 1e-4f);
}

TEST(GeneratorTest, DeterministicForEqualSeeds)
{
    const Dataset a = generateDataset(smallSpec());
    const Dataset b = generateDataset(smallSpec());
    EXPECT_EQ(a.base, b.base);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.ground_truth, b.ground_truth);
}

TEST(GeneratorTest, DifferentSeedsDiffer)
{
    GeneratorSpec spec = smallSpec();
    const Dataset a = generateDataset(spec);
    spec.seed = 100;
    const Dataset b = generateDataset(spec);
    EXPECT_NE(a.base, b.base);
}

TEST(GeneratorTest, GroundTruthIsExact)
{
    const Dataset data = generateDataset(smallSpec());
    for (std::size_t q = 0; q < data.num_queries; q += 5) {
        const auto exact = bruteForceSearch(data.baseView(),
                                            data.query(q), Metric::L2,
                                            10);
        for (std::size_t i = 0; i < 10; ++i)
            EXPECT_EQ(data.ground_truth[q][i], exact[i].id);
    }
}

TEST(GeneratorTest, ClusteredStructureExists)
{
    // Nearest neighbours should be far closer than random pairs.
    const Dataset data = generateDataset(smallSpec());
    double nn_dist = 0.0, random_dist = 0.0;
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const auto exact = bruteForceSearch(data.baseView(),
                                            data.query(q), Metric::L2,
                                            1);
        nn_dist += exact[0].distance;
        random_dist += l2DistanceSq(data.query(q),
                                    data.baseView().row(q * 13 % 400),
                                    data.dim);
    }
    EXPECT_LT(nn_dist, 0.5 * random_dist);
}

TEST(DatasetTest, SaveLoadRoundTrip)
{
    const Dataset data = generateDataset(smallSpec());
    const std::string path = "dataset_test.bin";
    data.save(path);
    const Dataset loaded = Dataset::load(path);
    EXPECT_EQ(loaded.name, data.name);
    EXPECT_EQ(loaded.base, data.base);
    EXPECT_EQ(loaded.queries, data.queries);
    EXPECT_EQ(loaded.ground_truth, data.ground_truth);
    EXPECT_EQ(loaded.gt_k, data.gt_k);
    std::remove(path.c_str());
}

TEST(RegistryTest, PaperDatasetRatiosHold)
{
    const auto cohere_small = workload::specForName("cohere-1m");
    const auto cohere_large = workload::specForName("cohere-10m");
    const auto openai_small = workload::specForName("openai-500k");
    const auto openai_large = workload::specForName("openai-5m");

    // 10x within families, 1:2 dims across families, 1:2 row ratio
    // between cohere and openai (1M vs 500K).
    EXPECT_EQ(cohere_large.rows, 10 * cohere_small.rows);
    EXPECT_EQ(openai_large.rows, 10 * openai_small.rows);
    EXPECT_EQ(openai_small.dim, 2 * cohere_small.dim);
    EXPECT_EQ(cohere_small.rows, 2 * openai_small.rows);
    EXPECT_EQ(cohere_small.num_queries, 1000u); // paper: 1,000 queries
}

TEST(RegistryTest, UnknownNameRejected)
{
    EXPECT_THROW(workload::specForName("sift-1b"), FatalError);
    EXPECT_THROW(workload::scaledPartner("nope"), FatalError);
}

TEST(RegistryTest, ScaledPartnerIsInvolution)
{
    for (const auto &name : workload::paperDatasetNames())
        EXPECT_EQ(workload::scaledPartner(workload::scaledPartner(name)),
                  name);
}

} // namespace
} // namespace ann
