/**
 * @file
 * Shared helpers for index-level tests: synthetic clustered data and
 * exact ground truth.
 */

#ifndef ANN_TESTS_TEST_UTIL_HH
#define ANN_TESTS_TEST_UTIL_HH

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "distance/topk.hh"

namespace ann::testutil {

/**
 * RAII scratch directory for tests that spill to real files: created
 * under the system temp root (honours $TMPDIR) so artifacts never
 * land in the repo checkout, removed recursively on destruction.
 * Hold one in a function-local static to share a directory across
 * the tests of a binary — it is cleaned up at process exit.
 */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        std::string tmpl =
            (std::filesystem::temp_directory_path() /
             (tag + ".XXXXXX"))
                .string();
        if (::mkdtemp(tmpl.data()) == nullptr) {
            // Fall back to a fixed name under the temp root; still
            // outside the checkout.
            tmpl = (std::filesystem::temp_directory_path() / tag)
                       .string();
            std::filesystem::create_directories(tmpl);
        }
        path_ = tmpl;
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }
    /** Path of a child entry inside the directory. */
    std::string sub(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/** Gaussian-mixture dataset resembling embedding workloads. */
struct TestData
{
    std::vector<float> base;
    std::vector<float> queries;
    std::size_t rows = 0;
    std::size_t num_queries = 0;
    std::size_t dim = 0;

    MatrixView
    baseView() const
    {
        return {base.data(), rows, dim};
    }
    MatrixView
    queryView() const
    {
        return {queries.data(), num_queries, dim};
    }
};

inline TestData
makeClusteredData(std::size_t rows, std::size_t num_queries,
                  std::size_t dim, std::uint64_t seed = 1234,
                  std::size_t clusters = 16)
{
    Rng rng(seed);
    std::vector<std::vector<float>> centers(clusters,
                                            std::vector<float>(dim));
    for (auto &center : centers)
        for (auto &x : center)
            x = rng.nextFloat(-1.0f, 1.0f);

    TestData data;
    data.rows = rows;
    data.num_queries = num_queries;
    data.dim = dim;
    data.base.reserve(rows * dim);
    data.queries.reserve(num_queries * dim);

    auto sample = [&](std::vector<float> &out) {
        const auto c = rng.nextBelow(clusters);
        for (std::size_t d = 0; d < dim; ++d)
            out.push_back(centers[c][d] +
                          static_cast<float>(rng.nextGaussian()) * 0.15f);
    };
    for (std::size_t r = 0; r < rows; ++r)
        sample(data.base);
    for (std::size_t q = 0; q < num_queries; ++q)
        sample(data.queries);
    return data;
}

/** Exact top-k ids for every query (L2). */
inline std::vector<std::vector<VectorId>>
groundTruth(const TestData &data, std::size_t k)
{
    std::vector<std::vector<VectorId>> truth(data.num_queries);
    for (std::size_t q = 0; q < data.num_queries; ++q) {
        const auto result = bruteForceSearch(
            data.baseView(), data.queryView().row(q), Metric::L2, k);
        for (const Neighbor &n : result)
            truth[q].push_back(n.id);
    }
    return truth;
}

} // namespace ann::testutil

#endif // ANN_TESTS_TEST_UTIL_HH
