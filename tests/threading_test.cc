/**
 * @file
 * Tests for the execution thread pool and for the determinism
 * contract of parallel real-query execution: the same workload must
 * produce bit-identical results and traces at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/hotpath.hh"
#include "common/thread_pool.hh"
#include "core/bench_runner.hh"
#include "engine/milvus_like.hh"
#include "engine/qdrant_like.hh"
#include "index/diskann_index.hh"
#include "index/spann_index.hh"
#include "storage/io_backend.hh"
#include "test_util.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10'000;
    std::vector<int> hits(n, 0);
    std::atomic<std::size_t> total{0};
    pool.parallelFor(n, 7, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i]; // per-index slot: no race by construction
        total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ZeroTasksNeverInvokesBody)
{
    ThreadPool pool(4);
    bool called = false;
    pool.parallelFor(0, 16, [&](std::size_t, std::size_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers)
{
    ThreadPool pool(2);
    const std::size_t n = 50'000;
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(n, 3, [&](std::size_t begin, std::size_t end) {
        std::uint64_t local = 0;
        for (std::size_t i = begin; i < end; ++i)
            local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(1000, 10,
                         [&](std::size_t begin, std::size_t) {
                             if (begin >= 500)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);

    // The pool must stay usable after a failed loop.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(100, 10, [&](std::size_t begin, std::size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<std::size_t> inner_total{0};
    pool.parallelFor(8, 1, [&](std::size_t, std::size_t) {
        // Nested loops run inline on the claiming thread instead of
        // re-entering the pool (which would deadlock a worker).
        pool.parallelFor(10, 2,
                         [&](std::size_t begin, std::size_t end) {
                             inner_total.fetch_add(
                                 end - begin,
                                 std::memory_order_relaxed);
                         });
    });
    EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::size_t covered = 0;
    pool.parallelFor(100, 9, [&](std::size_t begin, std::size_t end) {
        covered += end - begin;
    });
    EXPECT_EQ(covered, 100u);
}

// ------------------------------------------------------------ pinning

TEST(ThreadPoolTest, PinningEngagesWhenSupported)
{
    // The regression this guards: BENCH_hotpath shipped with
    // `pinned_workers: 0` for months because the pool auto-sized to
    // the 1-CPU cpuset, spawned zero workers, and the bench treated
    // "nothing pinned" as a pass. When the platform supports
    // affinity, a pool with spawned workers must pin every one of
    // them; where it doesn't, skip *loudly* instead of passing.
    if (!ThreadPool::pinningSupported())
        GTEST_SKIP() << "thread affinity unavailable in this "
                        "environment (restricted sandbox?) — pinning "
                        "left unverified";
    ThreadPool pool(2, /*pin_threads=*/true);
    EXPECT_EQ(pool.pinnedThreads(), pool.size() - 1)
        << "pinning supported but some spawned worker was not pinned";
}

TEST(ThreadPoolTest, PinningIsBestEffortAndKeepsResults)
{
    // Pinning may fail wholesale (restricted cpuset, refused
    // syscall) but never breaks the pool: every pinned count up to
    // the spawned-worker count is legal, and the loop still covers
    // every index exactly once.
    ThreadPool pool(4, /*pin_threads=*/true);
    EXPECT_LE(pool.pinnedThreads(), pool.size() - 1)
        << "only spawned workers are pinned, never the caller";
    if (ThreadPool::pinningSupported())
        EXPECT_GT(pool.pinnedThreads(), 0u)
            << "affinity works here, so at least one of the three "
               "spawned workers must be pinned";

    const std::size_t n = 10'000;
    std::vector<int> hits(n, 0);
    pool.parallelFor(n, 13, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, PinningWiderThanCpusetWrapsAround)
{
    // More workers than allowed CPUs: the NUMA-compact order wraps,
    // so pinning still succeeds (or degrades, on exotic hosts) and
    // the pool stays correct.
    const std::size_t wide = ThreadPool::allowedCpuCount() + 2;
    ThreadPool pool(wide, /*pin_threads=*/true);
    EXPECT_LE(pool.pinnedThreads(), wide - 1);
    if (ThreadPool::pinningSupported())
        EXPECT_EQ(pool.pinnedThreads(), wide - 1)
            << "wrap-around must pin every worker, reusing CPUs";
    std::atomic<std::size_t> total{0};
    pool.parallelFor(1000, 7, [&](std::size_t begin, std::size_t end) {
        total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, PinByDefaultIsProgrammable)
{
    const bool before = ThreadPool::pinByDefault();
    ThreadPool::setPinByDefault(true);
    EXPECT_TRUE(ThreadPool::pinByDefault());
    ThreadPool::setPinByDefault(false);
    EXPECT_FALSE(ThreadPool::pinByDefault());
    ThreadPool::setPinByDefault(before);
}

// ---------------------------------------------- execution determinism

using Output = engine::VectorDbEngine::SearchOutput;

/** Bitwise equality of two per-query outputs. */
void
expectSameOutputs(const std::vector<Output> &a,
                  const std::vector<Output> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
        ASSERT_EQ(a[q].results.size(), b[q].results.size())
            << "query " << q;
        for (std::size_t i = 0; i < a[q].results.size(); ++i) {
            EXPECT_EQ(a[q].results[i].id, b[q].results[i].id)
                << "query " << q << " rank " << i;
            EXPECT_EQ(a[q].results[i].distance,
                      b[q].results[i].distance)
                << "query " << q << " rank " << i;
        }
        EXPECT_TRUE(a[q].trace == b[q].trace) << "query " << q;
    }
}

class ParallelExecFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cacheDir_ = new testutil::TempDir("threading_test_cache");
        ::setenv("ANN_CACHE_DIR", cacheDir_->path().c_str(), 1);
        workload::GeneratorSpec spec;
        spec.name = "threading-test";
        spec.rows = 2000;
        spec.dim = 16;
        spec.num_queries = 40;
        spec.clusters = 10;
        spec.gt_k = 10;
        spec.seed = 7;
        data_ = new workload::Dataset(generateDataset(spec));
        diskann_ = new engine::MilvusLikeEngine(
            engine::MilvusIndexKind::DiskAnn);
        diskann_->prepare(*data_, cacheDir_->path());
        hnsw_ = new engine::QdrantLikeEngine();
        hnsw_->prepare(*data_, cacheDir_->path());
    }
    static void
    TearDownTestSuite()
    {
        delete hnsw_;
        delete diskann_;
        delete data_;
        hnsw_ = nullptr;
        diskann_ = nullptr;
        data_ = nullptr;
        delete cacheDir_;
        cacheDir_ = nullptr;
        ::unsetenv("ANN_CACHE_DIR");
        ::unsetenv("ANN_CACHE_DIR");
    }

    static workload::Dataset *data_;
    static engine::MilvusLikeEngine *diskann_;
    static engine::QdrantLikeEngine *hnsw_;
    static testutil::TempDir *cacheDir_;
};

workload::Dataset *ParallelExecFixture::data_ = nullptr;
engine::MilvusLikeEngine *ParallelExecFixture::diskann_ = nullptr;
engine::QdrantLikeEngine *ParallelExecFixture::hnsw_ = nullptr;
testutil::TempDir *ParallelExecFixture::cacheDir_ = nullptr;

TEST_F(ParallelExecFixture, DiskAnnParallelMatchesSerial)
{
    engine::SearchSettings settings;
    const auto serial = core::runAllQueries(*diskann_, *data_, settings,
                                            data_->num_queries, 1);
    const auto parallel = core::runAllQueries(
        *diskann_, *data_, settings, data_->num_queries, 4);
    expectSameOutputs(serial, parallel);
}

TEST_F(ParallelExecFixture, HnswParallelMatchesSerial)
{
    engine::SearchSettings settings;
    const auto serial = core::runAllQueries(*hnsw_, *data_, settings,
                                            data_->num_queries, 1);
    const auto parallel = core::runAllQueries(*hnsw_, *data_, settings,
                                              data_->num_queries, 4);
    expectSameOutputs(serial, parallel);
}

TEST_F(ParallelExecFixture, WorkloadTracesIdenticalAcrossThreadCounts)
{
    engine::SearchSettings settings;
    core::ExecOptions serial_exec;
    serial_exec.threads = 1;
    core::ExecOptions parallel_exec;
    parallel_exec.threads = 4;

    const auto serial = core::buildWorkloadTraces(*diskann_, *data_,
                                                  settings, serial_exec);
    const auto parallel = core::buildWorkloadTraces(
        *diskann_, *data_, settings, parallel_exec);

    EXPECT_EQ(serial.recall, parallel.recall);
    EXPECT_EQ(serial.mib_per_query, parallel.mib_per_query);
    ASSERT_EQ(serial.traces.size(), parallel.traces.size());
    for (std::size_t q = 0; q < serial.traces.size(); ++q)
        EXPECT_TRUE(serial.traces[q] == parallel.traces[q])
            << "query " << q;
}

TEST_F(ParallelExecFixture, VerifyModePassesOnDeterministicEngine)
{
    engine::SearchSettings settings;
    core::ExecOptions exec;
    exec.threads = 4;
    exec.verify = true;
    EXPECT_NO_THROW(
        core::buildWorkloadTraces(*hnsw_, *data_, settings, exec));
}

// ------------------------------------- real-I/O backend determinism

/**
 * The backend-identity contract: every I/O backend serves the same
 * node-file bytes, so beam search must return bit-identical neighbour
 * lists and distances on memory, file, and uring, at every beam
 * width. This is the regression gate for the batched async fetch
 * path.
 */
TEST_F(ParallelExecFixture, DiskAnnBackendsBitIdenticalAcrossBeamWidths)
{
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 16;
    build.graph.build_list = 32;
    build.pq.m = 8;
    index.build(data_->baseView(), build);

    std::vector<storage::IoOptions> modes;
    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = cacheDir_->path();
    modes.push_back(file_mode);
    storage::IoOptions serial_mode = file_mode;
    serial_mode.queue_depth = 1;
    modes.push_back(serial_mode);
    if (storage::uringSupported()) {
        storage::IoOptions uring_mode = file_mode;
        uring_mode.kind = storage::IoBackendKind::Uring;
        uring_mode.queue_depth = 4;
        modes.push_back(uring_mode);
    }

    for (const std::size_t beam_width : {1u, 2u, 4u, 8u}) {
        DiskAnnSearchParams params;
        params.k = 10;
        params.search_list = 24;
        params.beam_width = beam_width;

        // Reference answers from the memory-resident image.
        std::vector<SearchResult> expected;
        for (std::size_t q = 0; q < data_->num_queries; ++q)
            expected.push_back(index.search(data_->query(q), params));

        for (const storage::IoOptions &mode : modes) {
            index.setIoMode(mode);
            // Real backend: no zero-copy image, reads go to the file.
            ASSERT_EQ(index.ioBackend()->data(), nullptr);
            for (std::size_t q = 0; q < data_->num_queries; ++q) {
                const auto got = index.search(data_->query(q), params);
                ASSERT_EQ(got.size(), expected[q].size())
                    << mode.queue_depth << "-deep backend, beam "
                    << beam_width << ", query " << q;
                for (std::size_t i = 0; i < got.size(); ++i) {
                    EXPECT_EQ(got[i].id, expected[q][i].id)
                        << "beam " << beam_width << " query " << q;
                    EXPECT_EQ(got[i].distance,
                              expected[q][i].distance)
                        << "beam " << beam_width << " query " << q;
                }
            }
            // Back to memory for the next reference round.
            storage::IoOptions memory_mode;
            memory_mode.kind = storage::IoBackendKind::Memory;
            index.setIoMode(memory_mode);
        }
    }
}

/** Same contract for the SPANN posting-list file. */
TEST_F(ParallelExecFixture, SpannBackendsBitIdentical)
{
    SpannIndex index;
    SpannBuildParams build;
    build.nlist = 16;
    index.build(data_->baseView(), build);

    SpannSearchParams params;
    params.k = 10;
    params.nprobe = 4;

    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(index.search(data_->query(q), params));

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = cacheDir_->path();
    storage::IoOptions uring_mode = file_mode;
    uring_mode.kind = storage::IoBackendKind::Uring;

    for (const auto &mode : {file_mode, uring_mode}) {
        index.setIoMode(mode);
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto got = index.search(data_->query(q), params);
            ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].id, expected[q][i].id)
                    << "query " << q;
                EXPECT_EQ(got[i].distance, expected[q][i].distance)
                    << "query " << q;
            }
        }
    }
}

/**
 * The node-cache identity contract: the sector cache stores exact
 * bytes of an immutable node file, so turning it on must not change a
 * single result bit on any real backend — only how many reads reach
 * the backend. Also checks the observability: lookups flow, hits
 * appear once the working set re-visits sectors, and a generously
 * sized cache makes a repeated query's second run I/O-free.
 */
TEST_F(ParallelExecFixture, DiskAnnNodeCacheBitIdenticalAcrossBackends)
{
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 16;
    build.graph.build_list = 32;
    build.pq.m = 8;
    index.build(data_->baseView(), build);

    DiskAnnSearchParams params;
    params.k = 10;
    params.search_list = 24;
    params.beam_width = 4;

    // Reference answers from the memory-resident image (no cache
    // attaches there).
    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(index.search(data_->query(q), params));
    EXPECT_EQ(index.nodeCache(), nullptr);

    storage::IoOptions cached_file;
    cached_file.kind = storage::IoBackendKind::File;
    cached_file.spill_dir = cacheDir_->path();
    cached_file.node_cache.capacity_bytes = 4 * 1024 * 1024;
    // Small on purpose: the 2000-node graph packs into ~65 sectors,
    // so a big warm set would blanket the file and leave no misses
    // to measure below.
    cached_file.node_cache.warm_nodes = 16;
    std::vector<storage::IoOptions> modes{cached_file};
    if (storage::uringSupported()) {
        storage::IoOptions cached_uring = cached_file;
        cached_uring.kind = storage::IoBackendKind::Uring;
        modes.push_back(cached_uring);
    }

    for (const storage::IoOptions &mode : modes) {
        index.setIoMode(mode);
        ASSERT_NE(index.nodeCache(), nullptr);
        EXPECT_GT(index.nodeCache()->warmSectors(), 0u);
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto got = index.search(data_->query(q), params);
            ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].id, expected[q][i].id)
                    << "query " << q;
                EXPECT_EQ(got[i].distance, expected[q][i].distance)
                    << "query " << q;
            }
        }
        const storage::NodeCacheStats stats = index.nodeCacheStats();
        EXPECT_GT(stats.lookups, 0u);
        EXPECT_GT(stats.hits, 0u) << "medoid region should re-hit";
        EXPECT_GT(stats.warm_hits, 0u);
        EXPECT_EQ(stats.lookups, stats.hits + stats.misses);

        // Cache hits are excluded from the recorded I/O: a query
        // whose whole path is resident records zero sector reads.
        // Start from dropped dynamic frames — the query sweep above
        // made the small index fully resident.
        index.dropNodeCache();
        EXPECT_EQ(index.nodeCache()->residentSectors(), 0u);
        EXPECT_GT(index.nodeCache()->warmSectors(), 0u);
        SearchTraceRecorder first;
        index.search(data_->query(0), params, &first);
        SearchTraceRecorder second;
        index.search(data_->query(0), params, &second);
        EXPECT_GT(first.totalSectors(), 0u);
        EXPECT_EQ(second.totalSectors(), 0u)
            << "repeat of an identical query should be fully cached";

        // dropNodeCache() restores the cold-run I/O (the warm set
        // stays, so the cold run never exceeds the first).
        index.dropNodeCache();
        SearchTraceRecorder cold;
        index.search(data_->query(0), params, &cold);
        EXPECT_GT(cold.totalSectors(), 0u);
        EXPECT_LE(cold.totalSectors(), first.totalSectors())
            << "warm set still serves the entry region";
    }
}

/** Same contract for SPANN's posting-list reads (dynamic part only:
 *  the warm set is a graph notion). */
TEST_F(ParallelExecFixture, SpannNodeCacheBitIdentical)
{
    SpannIndex index;
    SpannBuildParams build;
    build.nlist = 16;
    index.build(data_->baseView(), build);

    SpannSearchParams params;
    params.k = 10;
    params.nprobe = 4;

    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(index.search(data_->query(q), params));

    storage::IoOptions cached_file;
    cached_file.kind = storage::IoBackendKind::File;
    cached_file.spill_dir = cacheDir_->path();
    cached_file.node_cache.capacity_bytes = 8 * 1024 * 1024;
    cached_file.node_cache.warm_nodes = 100; // ignored by SPANN
    index.setIoMode(cached_file);
    ASSERT_NE(index.nodeCache(), nullptr);
    EXPECT_EQ(index.nodeCache()->warmSectors(), 0u);

    for (int round = 0; round < 2; ++round) {
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto got = index.search(data_->query(q), params);
            ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].id, expected[q][i].id)
                    << "round " << round << " query " << q;
                EXPECT_EQ(got[i].distance, expected[q][i].distance)
                    << "round " << round << " query " << q;
            }
        }
    }
    const storage::NodeCacheStats stats = index.nodeCacheStats();
    EXPECT_GT(stats.hits, 0u) << "second round should re-hit lists";

    // A repeated query's lists are resident: zero recorded reads.
    SearchTraceRecorder repeat;
    index.search(data_->query(0), params, &repeat);
    EXPECT_EQ(repeat.totalSectors(), 0u);

    index.dropNodeCache();
    EXPECT_EQ(index.nodeCache()->residentSectors(), 0u);
    SearchTraceRecorder cold;
    index.search(data_->query(0), params, &cold);
    EXPECT_GT(cold.totalSectors(), 0u);
}

/**
 * Engine-level check: a whole MilvusLike run (load path included)
 * produces identical outputs when the process-wide default backend is
 * file instead of memory — i.e. what `annbench --io-backend file`
 * executes matches the seed behaviour bit for bit.
 */
TEST_F(ParallelExecFixture, EngineOutputsIdenticalUnderFileBackend)
{
    engine::SearchSettings settings;
    const auto reference = core::runAllQueries(
        *diskann_, *data_, settings, data_->num_queries, 4);

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = cacheDir_->path();
    storage::setDefaultIoOptions(file_mode);
    // Fresh engine: prepare() reloads the cached index through the
    // streaming load path onto the file backend.
    engine::MilvusLikeEngine engine(engine::MilvusIndexKind::DiskAnn);
    engine.prepare(*data_, cacheDir_->path());
    const auto real_io = core::runAllQueries(engine, *data_, settings,
                                             data_->num_queries, 4);
    storage::IoOptions memory_mode;
    storage::setDefaultIoOptions(memory_mode);

    expectSameOutputs(reference, real_io);
}

// --------------------------------------- hot-path toggle bit-identity

/** Restore the env-seeded toggle defaults when a test exits. */
struct HotpathToggleGuard
{
    ~HotpathToggleGuard()
    {
        setScratchReuseEnabled(true);
        setPrefetchEnabled(true);
        setAdcBatchEnabled(true);
        ThreadPool::setPinByDefault(false);
    }
};

/**
 * The hot-path contract: scratch arenas, software prefetch, and the
 * batched ADC kernel trade allocations, cache misses, and instruction
 * counts — never arithmetic. Every combination of the three toggles
 * must reproduce the all-off baseline bit for bit, on the graph
 * (HNSW) and PQ-rerank (DiskANN) engines alike.
 */
TEST_F(ParallelExecFixture, ToggleCombinationsBitIdentical)
{
    HotpathToggleGuard guard;
    engine::SearchSettings settings;

    setScratchReuseEnabled(false);
    setPrefetchEnabled(false);
    setAdcBatchEnabled(false);
    const auto hnsw_base = core::runAllQueries(
        *hnsw_, *data_, settings, data_->num_queries, 1);
    const auto diskann_base = core::runAllQueries(
        *diskann_, *data_, settings, data_->num_queries, 1);

    for (unsigned mask = 1; mask < 8; ++mask) {
        setScratchReuseEnabled((mask & 1u) != 0);
        setPrefetchEnabled((mask & 2u) != 0);
        setAdcBatchEnabled((mask & 4u) != 0);
        SCOPED_TRACE("toggle mask " + std::to_string(mask));
        expectSameOutputs(hnsw_base,
                          core::runAllQueries(*hnsw_, *data_, settings,
                                              data_->num_queries, 1));
        expectSameOutputs(
            diskann_base,
            core::runAllQueries(*diskann_, *data_, settings,
                                data_->num_queries, 1));
    }
}

/** Same contract on a real-I/O backend: the registered-buffer uring
 *  fast path (and its file fallback) must not change a bit when the
 *  toggles flip. */
TEST_F(ParallelExecFixture, ToggleCombinationsBitIdenticalOnRealIo)
{
    HotpathToggleGuard guard;
    DiskAnnIndex index;
    DiskAnnBuildParams build;
    build.graph.max_degree = 16;
    build.graph.build_list = 32;
    build.pq.m = 8;
    index.build(data_->baseView(), build);

    DiskAnnSearchParams params;
    params.k = 10;
    params.search_list = 24;
    params.beam_width = 4;

    storage::IoOptions mode;
    mode.kind = storage::uringSupported()
                    ? storage::IoBackendKind::Uring
                    : storage::IoBackendKind::File;
    mode.spill_dir = cacheDir_->path();
    index.setIoMode(mode);

    setScratchReuseEnabled(false);
    setPrefetchEnabled(false);
    setAdcBatchEnabled(false);
    storage::setUringRegisterEnabled(false);
    std::vector<SearchResult> expected;
    for (std::size_t q = 0; q < data_->num_queries; ++q)
        expected.push_back(index.search(data_->query(q), params));

    for (unsigned mask = 1; mask < 16; ++mask) {
        setScratchReuseEnabled((mask & 1u) != 0);
        setPrefetchEnabled((mask & 2u) != 0);
        setAdcBatchEnabled((mask & 4u) != 0);
        storage::setUringRegisterEnabled((mask & 8u) != 0);
        SCOPED_TRACE("toggle mask " + std::to_string(mask));
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto got = index.search(data_->query(q), params);
            ASSERT_EQ(got.size(), expected[q].size()) << "query " << q;
            for (std::size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].id, expected[q][i].id)
                    << "query " << q;
                EXPECT_EQ(got[i].distance, expected[q][i].distance)
                    << "query " << q;
            }
        }
    }
    storage::setUringRegisterEnabled(true);
}

/** A pinned execution pool moves threads, not arithmetic: parallel
 *  runs under the pin default must match the serial baseline. */
TEST_F(ParallelExecFixture, PinnedExecutionMatchesSerial)
{
    HotpathToggleGuard guard;
    engine::SearchSettings settings;
    const auto serial = core::runAllQueries(*diskann_, *data_, settings,
                                            data_->num_queries, 1);
    ThreadPool::setPinByDefault(true);
    const auto pinned = core::runAllQueries(
        *diskann_, *data_, settings, data_->num_queries, 4);
    expectSameOutputs(serial, pinned);
}

} // namespace
} // namespace ann
