/**
 * @file
 * Tests for k-means clustering and the two quantizers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "cluster/kmeans.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "distance/distance.hh"
#include "quant/product_quantizer.hh"
#include "quant/scalar_quantizer.hh"

namespace ann {
namespace {

/** Clustered synthetic data: @p k well-separated Gaussian blobs. */
std::vector<float>
makeBlobs(std::size_t k, std::size_t per_cluster, std::size_t dim,
          float separation, Rng &rng)
{
    std::vector<float> data;
    data.reserve(k * per_cluster * dim);
    for (std::size_t c = 0; c < k; ++c) {
        std::vector<float> center(dim);
        for (auto &x : center)
            x = rng.nextFloat(-1.0f, 1.0f) * separation;
        for (std::size_t i = 0; i < per_cluster; ++i)
            for (std::size_t d = 0; d < dim; ++d)
                data.push_back(center[d] +
                               static_cast<float>(rng.nextGaussian()) *
                                   0.05f);
    }
    return data;
}

TEST(KMeansTest, RecoverSeparatedClusters)
{
    Rng rng(1);
    const std::size_t k = 5, per = 50, dim = 8;
    auto data = makeBlobs(k, per, dim, 10.0f, rng);
    MatrixView view{data.data(), k * per, dim};

    KMeansParams params;
    params.k = k;
    params.max_iters = 25;
    params.seed = 7;
    const auto model = kmeansFit(view, params);
    const auto assign = assignToCentroids(model, view);

    // All members of a generated blob should share an assignment.
    for (std::size_t c = 0; c < k; ++c) {
        const std::uint32_t label = assign[c * per];
        for (std::size_t i = 1; i < per; ++i)
            EXPECT_EQ(assign[c * per + i], label) << "blob " << c;
    }
}

TEST(KMeansTest, CentroidCountAndDim)
{
    Rng rng(2);
    auto data = makeBlobs(3, 30, 4, 5.0f, rng);
    MatrixView view{data.data(), 90, 4};
    KMeansParams params;
    params.k = 10;
    const auto model = kmeansFit(view, params);
    EXPECT_EQ(model.k, 10u);
    EXPECT_EQ(model.dim, 4u);
    EXPECT_EQ(model.centroids.size(), 40u);
}

TEST(KMeansTest, SubsampleStillCoversSpace)
{
    Rng rng(3);
    auto data = makeBlobs(4, 100, 6, 8.0f, rng);
    MatrixView view{data.data(), 400, 6};
    KMeansParams params;
    params.k = 4;
    params.subsample = 80;
    const auto model = kmeansFit(view, params);
    const auto assign = assignToCentroids(model, view);
    // Every cluster should receive a meaningful share of points.
    std::vector<std::size_t> counts(4, 0);
    for (auto a : assign)
        ++counts[a];
    for (auto c : counts)
        EXPECT_GT(c, 40u);
}

TEST(KMeansTest, RejectsInvalidArguments)
{
    std::vector<float> data{1.0f, 2.0f};
    MatrixView view{data.data(), 2, 1};
    KMeansParams params;
    params.k = 3;
    EXPECT_THROW(kmeansFit(view, params), FatalError);
    params.k = 0;
    EXPECT_THROW(kmeansFit(view, params), FatalError);
}

TEST(KMeansTest, DeterministicAcrossRuns)
{
    Rng rng(4);
    auto data = makeBlobs(3, 40, 5, 6.0f, rng);
    MatrixView view{data.data(), 120, 5};
    KMeansParams params;
    params.k = 6;
    params.seed = 99;
    const auto a = kmeansFit(view, params);
    const auto b = kmeansFit(view, params);
    EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, KEqualsNProducesPointCentroids)
{
    std::vector<float> data{0.0f, 10.0f, 20.0f};
    MatrixView view{data.data(), 3, 1};
    KMeansParams params;
    params.k = 3;
    params.max_iters = 10;
    const auto model = kmeansFit(view, params);
    std::vector<float> sorted = model.centroids;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_FLOAT_EQ(sorted[0], 0.0f);
    EXPECT_FLOAT_EQ(sorted[1], 10.0f);
    EXPECT_FLOAT_EQ(sorted[2], 20.0f);
}

class PqFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(10);
        data_ = makeBlobs(8, 100, 32, 3.0f, rng);
        view_ = MatrixView{data_.data(), 800, 32};
    }

    std::vector<float> data_;
    MatrixView view_;
};

TEST_F(PqFixture, EncodeDecodeReducesError)
{
    ProductQuantizer pq;
    PqParams params;
    params.m = 8;
    params.ksub = 64;
    pq.train(view_, params);
    ASSERT_TRUE(pq.trained());
    EXPECT_EQ(pq.codeSize(), 8u);

    // Mean reconstruction error must be far below the data scale.
    std::vector<std::uint8_t> codes(pq.codeSize());
    std::vector<float> decoded(32);
    double total_err = 0.0, total_norm = 0.0;
    for (std::size_t r = 0; r < view_.rows; r += 13) {
        pq.encode(view_.row(r), codes.data());
        pq.decode(codes.data(), decoded.data());
        total_err += l2DistanceSq(view_.row(r), decoded.data(), 32);
        total_norm += dotProduct(view_.row(r), view_.row(r), 32);
    }
    EXPECT_LT(total_err, 0.05 * total_norm);
}

TEST_F(PqFixture, AdcMatchesReconstructedDistance)
{
    ProductQuantizer pq;
    PqParams params;
    params.m = 4;
    params.ksub = 32;
    pq.train(view_, params);

    Rng rng(11);
    std::vector<float> query(32);
    for (auto &x : query)
        x = rng.nextFloat(-3.0f, 3.0f);

    const AdcTable table = pq.computeAdcTable(query.data());
    std::vector<std::uint8_t> codes(pq.codeSize());
    for (std::size_t r = 0; r < 20; ++r) {
        pq.encode(view_.row(r * 7), codes.data());
        const float adc = pq.adcDistance(table, codes.data());
        const float exact =
            pq.reconstructedDistance(query.data(), codes.data());
        EXPECT_NEAR(adc, exact, 1e-2f * std::max(1.0f, exact));
    }
}

TEST_F(PqFixture, MoreCentroidsLowerError)
{
    auto mean_error = [&](std::size_t ksub) {
        ProductQuantizer pq;
        PqParams params;
        params.m = 8;
        params.ksub = ksub;
        pq.train(view_, params);
        std::vector<std::uint8_t> codes(pq.codeSize());
        std::vector<float> decoded(32);
        double err = 0.0;
        for (std::size_t r = 0; r < view_.rows; r += 9) {
            pq.encode(view_.row(r), codes.data());
            pq.decode(codes.data(), decoded.data());
            err += l2DistanceSq(view_.row(r), decoded.data(), 32);
        }
        return err;
    };
    EXPECT_LT(mean_error(64), mean_error(4));
}

TEST_F(PqFixture, SaveLoadRoundTrip)
{
    ProductQuantizer pq;
    PqParams params;
    params.m = 8;
    params.ksub = 16;
    pq.train(view_, params);
    const std::string path = "pq_test.bin";
    {
        BinaryWriter writer(path, "PQT", 1);
        pq.save(writer);
        writer.close();
    }
    ProductQuantizer loaded;
    {
        BinaryReader reader(path, "PQT", 1);
        loaded.load(reader);
    }
    std::vector<std::uint8_t> a(pq.codeSize()), b(pq.codeSize());
    pq.encode(view_.row(5), a.data());
    loaded.encode(view_.row(5), b.data());
    EXPECT_EQ(a, b);
    std::remove(path.c_str());
}

TEST_F(PqFixture, RejectsBadConfigurations)
{
    ProductQuantizer pq;
    PqParams params;
    params.m = 5; // does not divide 32
    EXPECT_THROW(pq.train(view_, params), FatalError);
    params.m = 8;
    params.ksub = 1000;
    EXPECT_THROW(pq.train(view_, params), FatalError);
}

TEST(ScalarQuantizerTest, RoundTripWithinQuantum)
{
    Rng rng(20);
    std::vector<float> data(100 * 16);
    for (auto &x : data)
        x = rng.nextFloat(-2.0f, 2.0f);
    MatrixView view{data.data(), 100, 16};

    ScalarQuantizer sq;
    sq.train(view);
    EXPECT_EQ(sq.codeSize(), 16u);

    std::vector<std::uint8_t> codes(16);
    std::vector<float> decoded(16);
    for (std::size_t r = 0; r < 100; r += 11) {
        sq.encode(view.row(r), codes.data());
        sq.decode(codes.data(), decoded.data());
        for (std::size_t d = 0; d < 16; ++d)
            EXPECT_NEAR(decoded[d], view.row(r)[d], 4.0f / 255.0f + 1e-5f);
    }
}

TEST(ScalarQuantizerTest, AsymmetricMatchesDecodedL2)
{
    Rng rng(21);
    std::vector<float> data(50 * 8);
    for (auto &x : data)
        x = rng.nextFloat(-1.0f, 1.0f);
    MatrixView view{data.data(), 50, 8};
    ScalarQuantizer sq;
    sq.train(view);

    std::vector<float> query(8);
    for (auto &x : query)
        x = rng.nextFloat(-1.0f, 1.0f);

    std::vector<std::uint8_t> codes(8);
    std::vector<float> decoded(8);
    for (std::size_t r = 0; r < 50; r += 7) {
        sq.encode(view.row(r), codes.data());
        sq.decode(codes.data(), decoded.data());
        EXPECT_NEAR(sq.asymmetricL2(query.data(), codes.data()),
                    l2DistanceSq(query.data(), decoded.data(), 8), 1e-4f);
    }
}

TEST(ScalarQuantizerTest, ConstantDimensionIsStable)
{
    std::vector<float> data{1.0f, 5.0f, 1.0f, 7.0f}; // dim0 constant
    MatrixView view{data.data(), 2, 2};
    ScalarQuantizer sq;
    sq.train(view);
    std::vector<std::uint8_t> codes(2);
    std::vector<float> decoded(2);
    sq.encode(view.row(0), codes.data());
    sq.decode(codes.data(), decoded.data());
    EXPECT_NEAR(decoded[0], 1.0f, 1e-4f);
}

TEST(ScalarQuantizerTest, SaveLoadRoundTrip)
{
    Rng rng(22);
    std::vector<float> data(30 * 4);
    for (auto &x : data)
        x = rng.nextFloat(-1.0f, 1.0f);
    MatrixView view{data.data(), 30, 4};
    ScalarQuantizer sq;
    sq.train(view);
    const std::string path = "sq_test.bin";
    {
        BinaryWriter writer(path, "SQT", 1);
        sq.save(writer);
        writer.close();
    }
    ScalarQuantizer loaded;
    {
        BinaryReader reader(path, "SQT", 1);
        loaded.load(reader);
    }
    std::vector<std::uint8_t> a(4), b(4);
    sq.encode(view.row(3), a.data());
    loaded.encode(view.row(3), b.data());
    EXPECT_EQ(a, b);
    std::remove(path.c_str());
}

} // namespace
} // namespace ann
