/**
 * @file
 * Tests for the application-level sector cache (SectorCache): CLOCK
 * second-chance eviction correctness per shard, the warm-set contract,
 * dropCaches() semantics, the stats counters, and concurrent
 * lookup/admit safety (the TSan CI job runs these under the race
 * detector).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/io_backend.hh"
#include "storage/node_cache.hh"

namespace ann::storage {
namespace {

/** A sector's worth of bytes derived from its number. */
std::vector<std::uint8_t>
sectorBytes(std::uint64_t sector)
{
    std::vector<std::uint8_t> bytes(kIoSectorBytes);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] =
            static_cast<std::uint8_t>((sector * 131 + i * 7) & 0xff);
    return bytes;
}

/** lookup() into a scratch buffer; verifies content on a hit. */
bool
checkedLookup(SectorCache &cache, std::uint64_t sector)
{
    std::vector<std::uint8_t> out(kIoSectorBytes, 0xEE);
    if (!cache.lookup(sector, out.data()))
        return false;
    EXPECT_EQ(out, sectorBytes(sector)) << "sector " << sector;
    return true;
}

TEST(NodeCacheConfigTest, FromEnvParsesKnobs)
{
    ::setenv("ANN_NODE_CACHE_MB", "8", 1);
    ::setenv("ANN_WARM_NODES", "500", 1);
    const NodeCacheConfig config = NodeCacheConfig::fromEnv();
    EXPECT_EQ(config.capacity_bytes, 8u * 1024 * 1024);
    EXPECT_EQ(config.warm_nodes, 500u);
    EXPECT_TRUE(config.enabled());
    ::unsetenv("ANN_NODE_CACHE_MB");
    ::unsetenv("ANN_WARM_NODES");
    EXPECT_FALSE(NodeCacheConfig::fromEnv().enabled());
}

TEST(NodeCacheTest, DisabledCacheMissesEverything)
{
    SectorCache cache(NodeCacheConfig{});
    EXPECT_EQ(cache.capacityBytes(), 0u);
    cache.admit(1, sectorBytes(1).data());
    EXPECT_FALSE(checkedLookup(cache, 1));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(NodeCacheTest, AdmitThenLookupRoundTrips)
{
    NodeCacheConfig config;
    config.capacity_bytes = 16 * kIoSectorBytes;
    config.shards = 4;
    SectorCache cache(config);
    for (std::uint64_t s = 0; s < 10; ++s)
        cache.admit(s, sectorBytes(s).data());
    for (std::uint64_t s = 0; s < 10; ++s)
        EXPECT_TRUE(checkedLookup(cache, s));
    const NodeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 10u);
    EXPECT_EQ(stats.insertions, 10u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.bytesSaved(), 10u * kIoSectorBytes);
    EXPECT_EQ(cache.residentSectors(), 10u);
}

/**
 * Single-shard CLOCK: the classic second-chance property. Fill the
 * cache, touch one resident, overflow — the untouched frames are
 * evicted before the touched one.
 */
TEST(NodeCacheTest, ClockGivesSecondChanceToReferencedFrames)
{
    NodeCacheConfig config;
    config.capacity_bytes = 4 * kIoSectorBytes;
    config.shards = 1;
    SectorCache cache(config);
    for (std::uint64_t s = 0; s < 4; ++s)
        cache.admit(s, sectorBytes(s).data());

    // Admission set every ref bit; one full revolution clears them
    // and evicts the frame under the hand (sector 0). Re-reference
    // sector 1 only, so the NEXT eviction must skip it.
    cache.admit(100, sectorBytes(100).data());
    EXPECT_FALSE(checkedLookup(cache, 0)); // the victim
    EXPECT_TRUE(checkedLookup(cache, 100));
    ASSERT_TRUE(checkedLookup(cache, 1));

    // Frames now: ref set on 100 (admit) and 1 (hit); 2, 3 clear.
    cache.admit(101, sectorBytes(101).data());
    EXPECT_TRUE(checkedLookup(cache, 1)) << "referenced frame evicted";
    EXPECT_TRUE(checkedLookup(cache, 101));
    EXPECT_FALSE(checkedLookup(cache, 2)) << "unreferenced survived";

    const NodeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.insertions, 6u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(cache.residentSectors(), 4u);
}

/** Eviction bookkeeping stays exact across many overflows. */
TEST(NodeCacheTest, EvictionKeepsMapAndFramesConsistent)
{
    NodeCacheConfig config;
    config.capacity_bytes = 8 * kIoSectorBytes;
    config.shards = 2;
    SectorCache cache(config);
    for (std::uint64_t s = 0; s < 100; ++s)
        cache.admit(s, sectorBytes(s).data());
    // Never more residents than frames, and every resident sector
    // must serve its exact bytes.
    EXPECT_LE(cache.residentSectors(), 8u);
    std::size_t served = 0;
    for (std::uint64_t s = 0; s < 100; ++s)
        served += checkedLookup(cache, s) ? 1 : 0;
    EXPECT_EQ(served, cache.residentSectors());
    EXPECT_EQ(cache.stats().insertions,
              cache.stats().evictions + cache.residentSectors());
}

/**
 * Per-page reuse accounting: a frame counts as "reused" once any hit
 * is served from it, exactly once, and the count survives both
 * eviction (retirement) and dropCaches().
 */
TEST(NodeCacheTest, PageReuseCountsEarnedFramesOnce)
{
    NodeCacheConfig config;
    config.capacity_bytes = 4 * kIoSectorBytes;
    config.shards = 1;
    SectorCache cache(config);
    cache.admit(1, sectorBytes(1).data());
    cache.admit(2, sectorBytes(2).data());
    EXPECT_EQ(cache.stats().pages_reused, 0u);
    EXPECT_DOUBLE_EQ(cache.stats().pageReuseRate(), 0.0);

    // Sector 1 earns its frame; repeat hits do not double-count it.
    EXPECT_TRUE(checkedLookup(cache, 1));
    EXPECT_EQ(cache.stats().pages_reused, 1u);
    EXPECT_TRUE(checkedLookup(cache, 1));
    EXPECT_EQ(cache.stats().pages_reused, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().pageReuseRate(), 0.5);

    // Retiring every frame must not lose the earned credit.
    cache.dropCaches();
    EXPECT_EQ(cache.stats().pages_reused, 1u);
    EXPECT_EQ(cache.stats().insertions, 2u);
    EXPECT_DOUBLE_EQ(cache.stats().pageReuseRate(), 0.5);
    cache.resetStats();
    EXPECT_EQ(cache.stats().pages_reused, 0u);
}

TEST(NodeCacheTest, DuplicateAdmitIsIgnored)
{
    NodeCacheConfig config;
    config.capacity_bytes = 4 * kIoSectorBytes;
    SectorCache cache(config);
    cache.admit(7, sectorBytes(7).data());
    cache.admit(7, sectorBytes(7).data());
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.residentSectors(), 1u);
}

TEST(NodeCacheTest, WarmSetHitsWithoutDynamicCapacity)
{
    NodeCacheConfig config; // capacity 0: warm set only
    config.warm_nodes = 4;
    SectorCache cache(config);
    for (std::uint64_t s = 0; s < 4; ++s)
        cache.warmInsert(s, sectorBytes(s).data());
    EXPECT_EQ(cache.warmSectors(), 4u);

    for (std::uint64_t s = 0; s < 4; ++s)
        EXPECT_TRUE(checkedLookup(cache, s));
    const NodeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.warm_hits, 4u);
    EXPECT_EQ(stats.hits, 4u);

    // admit() of a warm sector is a no-op (no dynamic frames anyway).
    cache.admit(0, sectorBytes(0).data());
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(NodeCacheTest, DropCachesEvictsDynamicButKeepsWarm)
{
    NodeCacheConfig config;
    config.capacity_bytes = 8 * kIoSectorBytes;
    config.warm_nodes = 2;
    config.shards = 1; // all six sectors must fit: no collisions
    SectorCache cache(config);
    cache.warmInsert(1000, sectorBytes(1000).data());
    cache.warmInsert(1001, sectorBytes(1001).data());
    for (std::uint64_t s = 0; s < 6; ++s)
        cache.admit(s, sectorBytes(s).data());
    ASSERT_EQ(cache.residentSectors(), 6u);

    cache.dropCaches();
    EXPECT_EQ(cache.residentSectors(), 0u);
    EXPECT_FALSE(checkedLookup(cache, 0));
    EXPECT_TRUE(checkedLookup(cache, 1000)) << "warm set must survive";
    EXPECT_TRUE(checkedLookup(cache, 1001));

    // The shards stay usable after the drop.
    cache.admit(42, sectorBytes(42).data());
    EXPECT_TRUE(checkedLookup(cache, 42));
}

TEST(NodeCacheTest, TinyCapacityClampsShardCount)
{
    NodeCacheConfig config;
    config.capacity_bytes = 2 * kIoSectorBytes; // fewer frames than
    config.shards = 16;                         // requested shards
    SectorCache cache(config);
    EXPECT_EQ(cache.capacityBytes(), 2 * kIoSectorBytes);
    for (std::uint64_t s = 0; s < 50; ++s)
        cache.admit(s, sectorBytes(s).data());
    EXPECT_LE(cache.residentSectors(), 2u);
    std::size_t served = 0;
    for (std::uint64_t s = 0; s < 50; ++s)
        served += checkedLookup(cache, s) ? 1 : 0;
    EXPECT_EQ(served, cache.residentSectors());
}

TEST(NodeCacheTest, ResetStatsZeroesCounters)
{
    NodeCacheConfig config;
    config.capacity_bytes = 4 * kIoSectorBytes;
    SectorCache cache(config);
    cache.admit(1, sectorBytes(1).data());
    checkedLookup(cache, 1);
    cache.resetStats();
    const NodeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups + stats.hits + stats.misses +
                  stats.insertions + stats.evictions,
              0u);
    // Contents are untouched.
    EXPECT_TRUE(checkedLookup(cache, 1));
}

TEST(NodeCacheStatsTest, AggregationAdds)
{
    NodeCacheStats a;
    a.lookups = 10;
    a.hits = 4;
    a.warm_hits = 1;
    a.misses = 6;
    NodeCacheStats b = a;
    b += a;
    EXPECT_EQ(b.lookups, 20u);
    EXPECT_EQ(b.hits, 8u);
    EXPECT_EQ(b.warm_hits, 2u);
    EXPECT_DOUBLE_EQ(b.hitRate(), 0.4);
    EXPECT_DOUBLE_EQ(NodeCacheStats{}.hitRate(), 0.0);
}

/**
 * Hammer one cache from many threads mixing lookups, admissions, and
 * periodic dropCaches(). Correctness here is (a) no data race — the
 * TSan job checks that — and (b) every hit serves exact bytes.
 */
TEST(NodeCacheTest, ConcurrentLookupAdmitAndDropAreSafe)
{
    NodeCacheConfig config;
    config.capacity_bytes = 64 * kIoSectorBytes;
    config.warm_nodes = 8;
    config.shards = 8;
    SectorCache cache(config);
    for (std::uint64_t s = 10000; s < 10008; ++s)
        cache.warmInsert(s, sectorBytes(s).data());

    constexpr int kThreads = 4;
    constexpr int kIters = 3000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            std::vector<std::uint8_t> out(kIoSectorBytes);
            for (int i = 0; i < kIters; ++i) {
                const std::uint64_t sector =
                    static_cast<std::uint64_t>((i * 37 + t * 11) % 256);
                if (cache.lookup(sector, out.data()))
                    ASSERT_EQ(out, sectorBytes(sector));
                else
                    cache.admit(sector, sectorBytes(sector).data());
                if (i % 100 == 0) {
                    const std::uint64_t warm = 10000 + (i / 100) % 8;
                    ASSERT_TRUE(cache.lookup(warm, out.data()));
                    ASSERT_EQ(out, sectorBytes(warm));
                }
                if (t == 0 && i % 1000 == 999)
                    cache.dropCaches();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const NodeCacheStats stats = cache.stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    EXPECT_GT(stats.hits, 0u);
}

} // namespace
} // namespace ann::storage
