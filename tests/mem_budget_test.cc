/**
 * @file
 * Tests for the DRAM-budget tiered index state: PQ-code spilling
 * under $ANN_MEM_BUDGET_MB must be bit-identical to the resident
 * configuration on every backend and layout, the embedded-code
 * archive (version 5) must round-trip while version-4 images stay
 * byte-stable, the budget boundary must tier exactly at the resident
 * footprint, and IVF posting payloads must spill the same way.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/serialize.hh"
#include "index/diskann_index.hh"
#include "index/ivf_index.hh"
#include "storage/io_backend.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::makeClusteredData;
using testutil::TestData;

/** Spill directory shared by every test of the binary. */
const testutil::TempDir &
spillDir()
{
    static const testutil::TempDir dir("mem_budget_test_spill");
    return dir;
}

storage::IoOptions
ioFor(storage::IoBackendKind kind, std::size_t budget_bytes = 0)
{
    storage::IoOptions io;
    io.kind = kind;
    io.queue_depth = 8;
    io.spill_dir = spillDir().path();
    io.mem_budget_bytes = budget_bytes;
    return io;
}

std::vector<SearchResult>
searchAll(const DiskAnnIndex &index, const TestData &data,
          std::size_t search_list = 32)
{
    DiskAnnSearchParams params;
    params.search_list = search_list;
    params.beam_width = 4;
    params.k = 10;
    std::vector<SearchResult> results;
    results.reserve(data.num_queries);
    for (std::size_t q = 0; q < data.num_queries; ++q)
        results.push_back(
            index.search(data.queryView().row(q), params));
    return results;
}

void
expectSameResults(const std::vector<SearchResult> &a,
                  const std::vector<SearchResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
        ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
        for (std::size_t i = 0; i < a[q].size(); ++i) {
            EXPECT_EQ(a[q][i].id, b[q][i].id)
                << "query " << q << " rank " << i;
            EXPECT_EQ(a[q][i].distance, b[q][i].distance)
                << "query " << q << " rank " << i;
        }
    }
}

DiskAnnIndex
buildIndex(const TestData &data, LayoutPolicy layout, bool embed)
{
    DiskAnnIndex index;
    DiskAnnBuildParams params;
    params.graph.max_degree = 24;
    params.graph.build_list = 48;
    params.pq.m = 8;
    params.pq.ksub = 16;
    params.layout = layout;
    params.embed_codes = embed;
    index.build(data.baseView(), params);
    return index;
}

std::vector<char>
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

// ------------------------------------------------- tiered bit-identity

/**
 * The tiering contract: for every backend x layout x embedding
 * combination, a budget that spills the code tier must reproduce the
 * resident top-k bit for bit, and restoring an unlimited budget must
 * restore residency (and the same results again).
 */
TEST(MemBudgetTest, TieredMatchesResidentAcrossBackendsAndLayouts)
{
    const TestData data = makeClusteredData(1200, 20, 24, 4242);
    for (const LayoutPolicy layout :
         {LayoutPolicy::IdOrder, LayoutPolicy::PackedBfs}) {
        for (const bool embed : {false, true}) {
            DiskAnnIndex index = buildIndex(data, layout, embed);
            EXPECT_EQ(index.embeddedCodeBytes() > 0, embed);
            for (const auto kind : {storage::IoBackendKind::Memory,
                                    storage::IoBackendKind::File}) {
                index.setIoMode(ioFor(kind));
                ASSERT_TRUE(index.codesResident());
                const auto baseline = searchAll(index, data);
                const std::size_t resident_bytes =
                    index.memoryBytes();

                // Tiny budget: codebooks survive, codes spill.
                index.setIoMode(ioFor(kind, 1));
                ASSERT_FALSE(index.codesResident());
                expectSameResults(baseline, searchAll(index, data));
                // Footprint reduction is asserted at scale in the
                // boundary test; at this size the floored code-page
                // cache can exceed the tiny code array.
                if (kind == storage::IoBackendKind::File)
                    EXPECT_GT(index.codeCacheStats().lookups, 0u);

                // Unlimited budget restores residency, bit-identical.
                index.setIoMode(ioFor(kind));
                ASSERT_TRUE(index.codesResident());
                EXPECT_EQ(index.memoryBytes(), resident_bytes);
                expectSameResults(baseline, searchAll(index, data));
            }
        }
    }
}

// ---------------------------------------------------- budget boundary

/**
 * The spill decision must flip exactly at the resident footprint: a
 * budget equal to codebooks + codes keeps everything in DRAM, one
 * byte less spills the code tier (floored code-page cache included).
 */
TEST(MemBudgetTest, BudgetBoundaryTiersExactlyAtResidentFootprint)
{
    // Enough rows that the code array dwarfs the floored code-page
    // cache, so spilling must shrink the footprint.
    const TestData data = makeClusteredData(5000, 10, 24, 77);
    DiskAnnIndex index =
        buildIndex(data, LayoutPolicy::PackedBfs, /*embed=*/true);
    index.setIoMode(ioFor(storage::IoBackendKind::File));
    const std::size_t full = index.memoryBytes();
    const auto baseline = searchAll(index, data);

    // Exactly at the footprint: stays resident.
    index.setIoMode(ioFor(storage::IoBackendKind::File, full));
    EXPECT_TRUE(index.codesResident());
    EXPECT_EQ(index.memoryBytes(), full);

    // One byte below: the code tier spills, the footprint drops to
    // codebooks + the (floored) code-page cache, results unchanged.
    index.setIoMode(ioFor(storage::IoBackendKind::File, full - 1));
    ASSERT_FALSE(index.codesResident());
    EXPECT_LT(index.memoryBytes(), full);
    expectSameResults(baseline, searchAll(index, data));
}

// --------------------------------------------------- archive versions

/**
 * Indexes built without embedded codes persist as the version-4
 * archive exactly as before this feature: load -> re-save must be
 * byte-stable, so old archives never silently migrate.
 */
TEST(MemBudgetTest, ArchiveV4RoundTripStaysByteStable)
{
    const TestData data = makeClusteredData(800, 10, 16, 5150);
    DiskAnnIndex index =
        buildIndex(data, LayoutPolicy::PackedBfs, /*embed=*/false);
    const std::string first = spillDir().sub("v4_first.bin");
    const std::string second = spillDir().sub("v4_second.bin");
    {
        BinaryWriter writer(first, "DAT", 1);
        index.save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(first, "DAT", 1);
        loaded.load(reader);
    }
    EXPECT_EQ(loaded.embeddedCodeBytes(), 0u);
    {
        BinaryWriter writer(second, "DAT", 1);
        loaded.save(writer);
        writer.close();
    }
    EXPECT_EQ(fileBytes(first), fileBytes(second));
    expectSameResults(searchAll(index, data),
                      searchAll(loaded, data));
}

/**
 * Indexes built with embedded codes persist as version 5: the
 * embedded copies and the record geometry round-trip (byte-stable
 * re-save), and a loaded index spills + searches identically.
 */
TEST(MemBudgetTest, ArchiveV5RoundTripPreservesEmbeddedCodes)
{
    const TestData data = makeClusteredData(800, 10, 16, 6001);
    DiskAnnIndex index =
        buildIndex(data, LayoutPolicy::PackedBfs, /*embed=*/true);
    ASSERT_GT(index.embeddedCodeBytes(), 0u);
    const std::string first = spillDir().sub("v5_first.bin");
    const std::string second = spillDir().sub("v5_second.bin");
    {
        BinaryWriter writer(first, "DAT", 1);
        index.save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(first, "DAT", 1);
        loaded.load(reader);
    }
    EXPECT_EQ(loaded.embeddedCodeBytes(), index.embeddedCodeBytes());
    EXPECT_EQ(loaded.nodeBytes(), index.nodeBytes());
    {
        BinaryWriter writer(second, "DAT", 1);
        loaded.save(writer);
        writer.close();
    }
    EXPECT_EQ(fileBytes(first), fileBytes(second));

    const auto baseline = searchAll(index, data);
    expectSameResults(baseline, searchAll(loaded, data));

    // A loaded v5 index under budget serves embedded codes in-beam:
    // spilled results stay bit-identical.
    loaded.setIoMode(ioFor(storage::IoBackendKind::File, 1));
    ASSERT_FALSE(loaded.codesResident());
    expectSameResults(baseline, searchAll(loaded, data));
}

// -------------------------------------------------------- IVF payload

/**
 * The IVF tier: posting payloads (PQ codes here) spill to the
 * residency file under budget, probed lists read them back, results
 * stay bit-identical, and a zero budget restores residency.
 */
TEST(MemBudgetTest, IvfPayloadSpillIsBitIdentical)
{
    const TestData data = makeClusteredData(2000, 20, 24, 909);
    IvfIndex index;
    IvfBuildParams params;
    params.nlist = 32;
    params.use_pq = true;
    params.pq.m = 8;
    params.pq.ksub = 16;
    index.build(data.baseView(), params);

    IvfSearchParams search;
    search.nprobe = 6;
    search.k = 10;
    auto run = [&] {
        std::vector<SearchResult> results;
        for (std::size_t q = 0; q < data.num_queries; ++q)
            results.push_back(
                index.search(data.queryView().row(q), search));
        return results;
    };

    ASSERT_TRUE(index.payloadResident());
    const std::size_t full = index.memoryBytes();
    const auto baseline = run();

    index.applyMemoryBudget(ioFor(storage::IoBackendKind::File, 1));
    ASSERT_FALSE(index.payloadResident());
    EXPECT_GT(index.diskBytes(), 0u);
    EXPECT_LT(index.memoryBytes(), full);
    expectSameResults(baseline, run());

    // Zero budget = unlimited: the payload moves back to DRAM.
    index.applyMemoryBudget(ioFor(storage::IoBackendKind::File, 0));
    ASSERT_TRUE(index.payloadResident());
    EXPECT_EQ(index.memoryBytes(), full);
    expectSameResults(baseline, run());
}

} // namespace
} // namespace ann
