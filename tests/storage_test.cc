/**
 * @file
 * Tests for the storage substrate: SSD model calibration behaviours,
 * page cache, block tracer, trace analysis, and the storage backend.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "sim/cpu_model.hh"
#include "sim/simulator.hh"
#include "storage/block_tracer.hh"
#include "storage/page_cache.hh"
#include "storage/ssd_model.hh"
#include "storage/storage_backend.hh"
#include "storage/trace_analysis.hh"

namespace ann {
namespace {

using sim::Simulator;
using sim::Task;
using storage::BlockTracer;
using storage::IoOp;
using storage::PageCache;
using storage::SsdConfig;
using storage::SsdModel;
using storage::StorageBackend;
using storage::TraceEvent;

TEST(SsdModelTest, SingleReadLatencyIsTensOfMicroseconds)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    SimTime completed_at = 0;
    ssd.readAsync(0, 4096, 0, [&]() { completed_at = simulator.now(); });
    simulator.run();
    // Flash ~45 us +- jitter, plus sub-us transfer.
    EXPECT_GT(completed_at, 30'000u);
    EXPECT_LT(completed_at, 70'000u);
    EXPECT_EQ(ssd.completedReads(), 1u);
    EXPECT_EQ(ssd.bytesRead(), 4096u);
}

TEST(SsdModelTest, HighQueueDepthReaches4kRandomReadTarget)
{
    // QD64 closed loop for a simulated second must land near the
    // paper's 1.3 MIOPS fio measurement (no CPU cost in this test).
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    const SimTime second = 1'000'000'000;

    auto worker = [](Simulator &s, SsdModel &d, SimTime until) -> Task {
        while (s.now() < until)
            co_await d.read(0, 4096, 0);
    };
    for (int i = 0; i < 64; ++i)
        worker(simulator, ssd, second);
    simulator.runUntil(second);

    const double miops =
        static_cast<double>(ssd.completedReads()) / 1e6;
    EXPECT_GT(miops, 1.1);
    EXPECT_LT(miops, 1.7);
}

TEST(SsdModelTest, SequentialLargeReadsSaturateLinkBandwidth)
{
    // 32 concurrent 128 KiB readers must approach 7.2 GiB/s.
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    const SimTime second = 1'000'000'000;

    auto worker = [](Simulator &s, SsdModel &d, SimTime until) -> Task {
        std::uint64_t offset = 0;
        while (s.now() < until) {
            co_await d.read(offset, 128 * 1024, 0);
            offset += 128 * 1024;
        }
    };
    for (int i = 0; i < 32; ++i)
        worker(simulator, ssd, second);
    simulator.runUntil(second);

    const double gib = static_cast<double>(ssd.bytesRead()) /
                       (1024.0 * 1024.0 * 1024.0);
    EXPECT_GT(gib, 6.3);
    EXPECT_LT(gib, 7.3); // never above the configured link cap
}

TEST(SsdModelTest, BandwidthNeverExceedsLinkCap)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    const SimTime second = 1'000'000'000;
    auto worker = [](Simulator &s, SsdModel &d, SimTime until) -> Task {
        while (s.now() < until)
            co_await d.read(0, 1024 * 1024, 0);
    };
    for (int i = 0; i < 128; ++i)
        worker(simulator, ssd, second);
    simulator.runUntil(second);
    const double gib = static_cast<double>(ssd.bytesRead()) /
                       (1024.0 * 1024.0 * 1024.0);
    EXPECT_LE(gib, 7.21);
}

TEST(SsdModelTest, WritesAreSlowerThanReads)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    SimTime read_done = 0, write_done = 0;
    ssd.readAsync(0, 4096, 0, [&]() { read_done = simulator.now(); });
    simulator.run();
    ssd.writeAsync(0, 4096, 0, [&]() { write_done = simulator.now(); });
    simulator.run();
    EXPECT_GT(write_done - read_done, read_done);
    EXPECT_EQ(ssd.completedWrites(), 1u);
}

TEST(SsdModelTest, TracerSeesIssueEvents)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    ssd.readAsync(8192, 4096, 7, []() {});
    ssd.writeAsync(0, 8192, 9, []() {});
    simulator.run();
    ASSERT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.events()[0].op, IoOp::Read);
    EXPECT_EQ(tracer.events()[0].offset_bytes, 8192u);
    EXPECT_EQ(tracer.events()[0].size_bytes, 4096u);
    EXPECT_EQ(tracer.events()[0].stream_id, 7u);
    EXPECT_EQ(tracer.events()[1].op, IoOp::Write);
}

TEST(SsdModelTest, DeterministicAcrossRuns)
{
    auto run_once = []() {
        Simulator simulator;
        SsdModel ssd(simulator, SsdConfig::samsung990Pro());
        std::vector<SimTime> completions;
        for (int i = 0; i < 50; ++i)
            ssd.readAsync(static_cast<std::uint64_t>(i) * 4096, 4096, 0,
                          [&completions, &simulator]() {
                              completions.push_back(simulator.now());
                          });
        simulator.run();
        return completions;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(PageCacheTest, LruEviction)
{
    PageCache cache(2);
    EXPECT_FALSE(cache.lookup(1));
    cache.insert(1);
    EXPECT_FALSE(cache.lookup(2));
    cache.insert(2);
    EXPECT_TRUE(cache.lookup(1)); // 1 most recent now
    cache.insert(3);              // evicts 2
    EXPECT_FALSE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_TRUE(cache.lookup(3));
    EXPECT_EQ(cache.residentPages(), 2u);
}

TEST(PageCacheTest, StatsAndDrop)
{
    PageCache cache(4);
    cache.insert(1);
    cache.lookup(1);
    cache.lookup(2);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    cache.dropCaches();
    EXPECT_EQ(cache.residentPages(), 0u);
    EXPECT_FALSE(cache.lookup(1));
    EXPECT_EQ(cache.hits(), 1u); // stats survive the drop
}

TEST(PageCacheTest, ReinsertRefreshesRecency)
{
    PageCache cache(2);
    cache.insert(1);
    cache.insert(2);
    cache.insert(1); // refresh, no eviction
    cache.insert(3); // evicts 2 (LRU), not 1
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_FALSE(cache.lookup(2));
}

TEST(TraceAnalysisTest, SummaryAndSizeFractions)
{
    std::vector<TraceEvent> events{
        {0, IoOp::Read, 0, 4096, 0},
        {100, IoOp::Read, 4096, 4096, 0},
        {200, IoOp::Read, 0, 8192, 1},
        {300, IoOp::Write, 0, 4096, 1},
    };
    const auto summary = storage::summarizeTrace(events);
    EXPECT_EQ(summary.read_requests, 3u);
    EXPECT_EQ(summary.write_requests, 1u);
    EXPECT_EQ(summary.read_bytes, 16384u);
    EXPECT_NEAR(summary.fraction_4k_reads, 2.0 / 3.0, 1e-12);
}

TEST(TraceAnalysisTest, BandwidthTimeline)
{
    std::vector<TraceEvent> events;
    // 1 MiB of reads in second 0, 2 MiB in second 1.
    for (int i = 0; i < 256; ++i)
        events.push_back({static_cast<SimTime>(i), IoOp::Read, 0, 4096,
                          0});
    for (int i = 0; i < 512; ++i)
        events.push_back({1'000'000'000 + static_cast<SimTime>(i),
                          IoOp::Read, 0, 4096, 0});
    const auto timeline =
        storage::readBandwidthTimeline(events, 2'000'000'000);
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_NEAR(timeline[0], 1.0, 1e-9);
    EXPECT_NEAR(timeline[1], 2.0, 1e-9);
    EXPECT_NEAR(storage::meanReadBandwidthMib(events, 2'000'000'000),
                1.5, 1e-9);
}

TEST(TraceAnalysisTest, PerStreamAttribution)
{
    std::vector<TraceEvent> events{
        {0, IoOp::Read, 0, 4096, 1},
        {1, IoOp::Read, 0, 4096, 1},
        {2, IoOp::Read, 0, 8192, 2},
        {3, IoOp::Write, 0, 4096, 1},
    };
    const auto bytes = storage::perStreamReadBytes(events);
    EXPECT_EQ(bytes.at(1), 8192u);
    EXPECT_EQ(bytes.at(2), 8192u);
}

TEST(TraceAnalysisTest, SizeHistogram)
{
    std::vector<TraceEvent> events{
        {0, IoOp::Read, 0, 4096, 0},
        {1, IoOp::Read, 0, 4096, 0},
        {2, IoOp::Read, 0, 131072, 0},
    };
    const auto hist = storage::readSizeHistogram(events);
    EXPECT_EQ(hist.totalCount(), 3u);
    EXPECT_EQ(hist.bucketCount(0), 2u); // 4 KiB bucket
    EXPECT_DOUBLE_EQ(hist.fraction(0), 2.0 / 3.0);
}

TEST(StorageBackendTest, DirectModeIssuesEverySector)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    StorageBackend backend(ssd, nullptr, 0);

    bool done = false;
    std::vector<SectorRead> reads{{5, 1}, {9, 2}};
    backend.readBatchAsync(reads, 3, [&]() { done = true; });
    simulator.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.events()[0].offset_bytes, 5u * 4096u);
    EXPECT_EQ(tracer.events()[0].size_bytes, 4096u);
    EXPECT_EQ(tracer.events()[1].size_bytes, 8192u);
}

TEST(StorageBackendTest, BufferedModeSkipsCachedSectors)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    PageCache cache(128);
    StorageBackend backend(ssd, &cache, 0);

    std::vector<SectorRead> reads{{10, 4}};
    backend.readBatchAsync(backend.admit(reads), 0, []() {});
    simulator.run();
    EXPECT_EQ(tracer.size(), 1u); // one merged 16 KiB request

    // Second access: fully cached, admission absorbs everything.
    const auto second = backend.admit(reads);
    EXPECT_TRUE(second.empty());
    bool done = false;
    backend.readBatchAsync(second, 0, [&]() { done = true; });
    simulator.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(tracer.size(), 1u);
    EXPECT_GE(cache.hits(), 4u);
}

TEST(StorageBackendTest, BufferedModeMergesContiguousMisses)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    PageCache cache(128);
    StorageBackend backend(ssd, &cache, 0);

    // Warm sector 12 so run [10..14) splits into [10,2) and [13,1).
    std::vector<SectorRead> warm{{12, 1}};
    backend.readBatchAsync(backend.admit(warm), 0, []() {});
    simulator.run();
    tracer.clear();

    std::vector<SectorRead> reads{{10, 4}};
    backend.readBatchAsync(backend.admit(reads), 0, []() {});
    simulator.run();
    ASSERT_EQ(tracer.size(), 2u);
    EXPECT_EQ(tracer.events()[0].offset_bytes, 10u * 4096u);
    EXPECT_EQ(tracer.events()[0].size_bytes, 2u * 4096u);
    EXPECT_EQ(tracer.events()[1].offset_bytes, 13u * 4096u);
    EXPECT_EQ(tracer.events()[1].size_bytes, 4096u);
}

TEST(StorageBackendTest, AdmitDirectModePassesBatchThrough)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    StorageBackend backend(ssd, nullptr, 0);

    // No cache: admit() must return the batch unchanged, including
    // overlapping runs and whatever order the caller chose.
    const std::vector<SectorRead> reads{{9, 2}, {5, 1}, {9, 2}};
    const auto admitted = backend.admit(reads);
    ASSERT_EQ(admitted.size(), reads.size());
    for (std::size_t i = 0; i < reads.size(); ++i) {
        EXPECT_EQ(admitted[i].sector, reads[i].sector) << "run " << i;
        EXPECT_EQ(admitted[i].count, reads[i].count) << "run " << i;
    }
}

TEST(StorageBackendTest, AdmitEmptyBatch)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    PageCache cache(16);
    StorageBackend direct(ssd, nullptr, 0);
    StorageBackend buffered(ssd, &cache, 0);
    EXPECT_TRUE(direct.admit({}).empty());
    EXPECT_TRUE(buffered.admit({}).empty());
}

TEST(StorageBackendTest, AdmitSingleSectorMissThenHit)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    PageCache cache(16);
    StorageBackend backend(ssd, &cache, 0);

    const std::vector<SectorRead> reads{{7, 1}};
    const auto miss = backend.admit(reads);
    ASSERT_EQ(miss.size(), 1u);
    EXPECT_EQ(miss[0].sector, 7u);
    EXPECT_EQ(miss[0].count, 1u);

    // Admission marked it resident: the re-read is fully absorbed.
    EXPECT_TRUE(backend.admit(reads).empty());
    EXPECT_GE(cache.hits(), 1u);
}

TEST(StorageBackendTest, AdmitAlreadyResidentRunIsAbsorbed)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    PageCache cache(64);
    StorageBackend backend(ssd, &cache, 0);

    for (std::uint64_t s = 20; s < 28; ++s)
        cache.insert(s);
    EXPECT_TRUE(backend.admit({{20, 8}}).empty());
}

TEST(StorageBackendTest, AdmitPartiallyResidentRunSplits)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    PageCache cache(64);
    StorageBackend backend(ssd, &cache, 0);

    // Resident holes at 41 and 44 split [40..46) into three runs.
    cache.insert(41);
    cache.insert(44);
    const auto admitted = backend.admit({{40, 6}});
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0].sector, 40u);
    EXPECT_EQ(admitted[0].count, 1u);
    EXPECT_EQ(admitted[1].sector, 42u);
    EXPECT_EQ(admitted[1].count, 2u);
    EXPECT_EQ(admitted[2].sector, 45u);
    EXPECT_EQ(admitted[2].count, 1u);
}

TEST(StorageBackendTest, WriteBatchIssuesWrites)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    StorageBackend backend(ssd, nullptr, 0);
    bool done = false;
    std::vector<SectorRead> writes{{100, 8}};
    backend.writeBatchAsync(writes, 5, [&]() { done = true; });
    simulator.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(tracer.size(), 1u);
    EXPECT_EQ(tracer.events()[0].op, IoOp::Write);
    EXPECT_EQ(tracer.events()[0].size_bytes, 8u * 4096u);
    EXPECT_EQ(ssd.bytesWritten(), 8u * 4096u);
}

TEST(StorageBackendTest, BaseOffsetShiftsRequests)
{
    Simulator simulator;
    BlockTracer tracer;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro(), &tracer);
    StorageBackend backend(ssd, nullptr, 1 << 20);
    std::vector<SectorRead> reads{{0, 1}};
    backend.readBatchAsync(reads, 0, []() {});
    simulator.run();
    EXPECT_EQ(tracer.events()[0].offset_bytes, 1u << 20);
}

TEST(StorageBackendTest, RejectsUnalignedBase)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    EXPECT_THROW(StorageBackend(ssd, nullptr, 100), FatalError);
}

} // namespace
} // namespace ann
