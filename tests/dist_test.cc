/**
 * @file
 * Tests for the distributed serving subsystem: shard maps (parsing,
 * partitioning, slicing), partial top-k merging, and a real loopback
 * cluster behind RouterEngine (merge correctness against client-side
 * merging, overload relay, replica failover + rejoin, hedging against
 * an injected straggler).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "dist/router.hh"
#include "dist/topology.hh"
#include "distance/recall.hh"
#include "engine/milvus_like.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

using dist::Endpoint;
using dist::RouterConfig;
using dist::RouterEngine;
using dist::ShardSpec;
using dist::Topology;
using engine::MilvusIndexKind;
using engine::MilvusLikeEngine;
using engine::SearchSettings;
using workload::Dataset;
using workload::GeneratorSpec;

// ------------------------------------------------------- topology

TEST(TopologyTest, EndpointParsing)
{
    Endpoint e;
    ASSERT_TRUE(dist::parseEndpoint("10.0.0.1:7654", &e));
    EXPECT_EQ(e.host, "10.0.0.1");
    EXPECT_EQ(e.port, 7654);
    ASSERT_TRUE(dist::parseEndpoint(":7000", &e));
    EXPECT_EQ(e.host, "127.0.0.1");
    EXPECT_EQ(e.port, 7000);
    EXPECT_FALSE(dist::parseEndpoint("no-port", &e));
    EXPECT_FALSE(dist::parseEndpoint("h:99999", &e));
    EXPECT_FALSE(dist::parseEndpoint("h:", &e));
}

TEST(TopologyTest, SpecParsingAndFileRoundTrip)
{
    const Topology topology = dist::parseTopologySpec(
        "router@127.0.0.1:7600;:7601,:7611;:7602,:7612");
    EXPECT_EQ(topology.router.port, 7600);
    ASSERT_EQ(topology.numShards(), 2u);
    ASSERT_EQ(topology.numReplicas(0), 2u);
    EXPECT_EQ(topology.numBackends(), 4u);
    EXPECT_EQ(topology.shards[1][1].port, 7612);

    const std::string path = "./dist_test_topology.topo";
    dist::saveTopologyFile(topology, path);
    const Topology loaded = dist::loadTopologyFile(path);
    std::filesystem::remove(path);
    ASSERT_EQ(loaded.numShards(), topology.numShards());
    EXPECT_EQ(loaded.router, topology.router);
    for (std::size_t s = 0; s < topology.numShards(); ++s)
        EXPECT_EQ(loaded.shards[s], topology.shards[s]);
}

TEST(TopologyTest, MalformedSpecsThrow)
{
    EXPECT_THROW(dist::parseTopologySpec(""), FatalError);
    EXPECT_THROW(dist::parseTopologySpec("router@:1"), FatalError);
    EXPECT_THROW(dist::parseTopologySpec(":1;,"), FatalError);
    EXPECT_THROW(dist::parseTopologySpec("bad"), FatalError);
    // Duplicate concrete endpoints serve two shards — misconfigured.
    EXPECT_THROW(dist::parseTopologySpec(":7601;:7601"), FatalError);
}

TEST(TopologyTest, ShardRangePartitionsExactly)
{
    for (const std::size_t rows : {1u, 7u, 100u, 101u, 4096u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
            if (shards > rows)
                continue;
            std::size_t covered = 0;
            std::size_t prev_end = 0;
            for (std::size_t s = 0; s < shards; ++s) {
                const auto range = dist::shardRange(rows, s, shards);
                EXPECT_EQ(range.begin, prev_end);
                EXPECT_GT(range.size(), 0u);
                // Slices differ in size by at most one row.
                EXPECT_LE(range.size(), rows / shards + 1);
                EXPECT_GE(range.size(), rows / shards);
                covered += range.size();
                prev_end = range.end;
            }
            EXPECT_EQ(covered, rows);
            EXPECT_EQ(prev_end, rows);
        }
    }
}

TEST(TopologyTest, ShardSpecParsing)
{
    ShardSpec spec;
    ASSERT_TRUE(dist::parseShardSpec("2/4", &spec));
    EXPECT_EQ(spec.index, 2u);
    EXPECT_EQ(spec.count, 4u);
    EXPECT_FALSE(dist::parseShardSpec("4/4", &spec));
    EXPECT_FALSE(dist::parseShardSpec("1", &spec));
    EXPECT_FALSE(dist::parseShardSpec("a/b", &spec));
    EXPECT_FALSE(dist::parseShardSpec("1/0", &spec));
}

TEST(TopologyTest, ShardSliceTakesContiguousRows)
{
    GeneratorSpec gen;
    gen.name = "slice-test";
    gen.rows = 103;
    gen.dim = 4;
    gen.num_queries = 5;
    gen.gt_k = 3;
    const Dataset dataset = generateDataset(gen);

    const ShardSpec spec{1, 3};
    const Dataset slice = dist::shardSlice(dataset, spec);
    const auto range = dist::shardRange(dataset.rows, 1, 3);
    EXPECT_EQ(slice.rows, range.size());
    EXPECT_EQ(slice.dim, dataset.dim);
    EXPECT_EQ(slice.name, "slice-test-s1of3");
    EXPECT_EQ(slice.num_queries, dataset.num_queries);
    EXPECT_EQ(slice.gt_k, 0u); // global gt is meaningless on a slice
    for (std::size_t r = 0; r < slice.rows; ++r)
        for (std::size_t d = 0; d < slice.dim; ++d)
            EXPECT_EQ(slice.base[r * slice.dim + d],
                      dataset.base[(range.begin + r) * dataset.dim + d]);
}

// -------------------------------------------------- partial merging

TEST(MergePartialsTest, MergesAscendingAcrossShards)
{
    const std::vector<SearchResult> partials = {
        {{10, 0.1f}, {11, 0.4f}, {12, 0.9f}},
        {{20, 0.2f}, {21, 0.3f}},
        {},
    };
    const SearchResult merged = dist::mergePartials(partials, 4);
    ASSERT_EQ(merged.size(), 4u);
    EXPECT_EQ(merged[0].id, 10u);
    EXPECT_EQ(merged[1].id, 20u);
    EXPECT_EQ(merged[2].id, 21u);
    EXPECT_EQ(merged[3].id, 11u);
    for (std::size_t i = 1; i < merged.size(); ++i)
        EXPECT_LE(merged[i - 1].distance, merged[i].distance);
}

TEST(MergePartialsTest, DuplicateIdsKeepFirstOccurrence)
{
    // Replayed/overlapping partials must not let one vector occupy
    // two of the k result slots.
    const std::vector<SearchResult> partials = {
        {{5, 0.10f}, {6, 0.20f}},
        {{5, 0.10f}, {7, 0.15f}, {6, 0.20f}},
    };
    const SearchResult merged = dist::mergePartials(partials, 10);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].id, 5u);
    EXPECT_EQ(merged[1].id, 7u);
    EXPECT_EQ(merged[2].id, 6u);
}

TEST(MergePartialsTest, BoundsResultToK)
{
    std::vector<SearchResult> partials(3);
    for (std::size_t s = 0; s < partials.size(); ++s)
        for (std::size_t i = 0; i < 8; ++i)
            partials[s].push_back(
                {static_cast<VectorId>(s * 100 + i),
                 static_cast<float>(s) + 0.1f * static_cast<float>(i)});
    const SearchResult merged = dist::mergePartials(partials, 5);
    ASSERT_EQ(merged.size(), 5u);
    // All five come from the first (closest) shard's list.
    for (const Neighbor &n : merged)
        EXPECT_LT(n.id, 100u);
}

// ------------------------------------------------- loopback cluster

/**
 * Dataset + per-shard engines shared by every cluster test; servers
 * are cheap and started per test (their configs differ). Replicas of
 * one shard serve the same prepared engine instance — real replica
 * processes build identical indexes from the same slice.
 */
class ClusterFixture : public ::testing::Test
{
  protected:
    static constexpr std::size_t kShards = 2;

    static void
    SetUpTestSuite()
    {
        cacheDir_ = new std::string("./dist_test_cache");
        std::filesystem::create_directories(*cacheDir_);
        GeneratorSpec spec;
        spec.name = "dist-test";
        spec.rows = 3000;
        spec.dim = 16;
        spec.num_queries = 40;
        spec.clusters = 10;
        spec.gt_k = 10;
        spec.seed = 23;
        data_ = new Dataset(generateDataset(spec));
        full_ = new MilvusLikeEngine(MilvusIndexKind::Hnsw);
        full_->prepare(*data_, *cacheDir_);
        shardEngines_ = new std::vector<std::unique_ptr<
            MilvusLikeEngine>>();
        for (std::size_t s = 0; s < kShards; ++s) {
            const Dataset slice =
                dist::shardSlice(*data_, ShardSpec{s, kShards});
            auto engine = std::make_unique<MilvusLikeEngine>(
                MilvusIndexKind::Hnsw);
            engine->prepare(slice, *cacheDir_);
            shardEngines_->push_back(std::move(engine));
        }
    }

    static void
    TearDownTestSuite()
    {
        delete shardEngines_;
        delete full_;
        delete data_;
        std::filesystem::remove_all(*cacheDir_);
        delete cacheDir_;
        shardEngines_ = nullptr;
        full_ = nullptr;
        data_ = nullptr;
        cacheDir_ = nullptr;
    }

    struct Cluster
    {
        /** servers[s][r] fronts shard s (replicas share the engine). */
        std::vector<std::vector<std::unique_ptr<serve::AnnServer>>>
            servers;
        Topology topology;
    };

    /**
     * Start @p replicas servers per shard on ephemeral ports and
     * patch the real ports into the returned topology.
     * @p slow_replica if >= 0, replica at that index of every shard
     * gets every request delayed by @p slow_us (straggler injection).
     */
    static Cluster
    startCluster(std::size_t replicas, int slow_replica = -1,
                 std::uint64_t slow_us = 0)
    {
        Cluster cluster;
        cluster.topology = dist::loopbackTopology(kShards, replicas);
        cluster.servers.resize(kShards);
        for (std::size_t s = 0; s < kShards; ++s) {
            const auto range =
                dist::shardRange(data_->rows, s, kShards);
            for (std::size_t r = 0; r < replicas; ++r) {
                serve::ServerConfig config;
                config.port = 0;
                config.expected_dim = data_->dim;
                config.exec_threads = 2;
                config.id_offset = range.begin;
                if (slow_replica >= 0 &&
                    r == static_cast<std::size_t>(slow_replica)) {
                    config.slow_every = 1;
                    config.slow_us =
                        std::chrono::microseconds(slow_us);
                }
                auto server = std::make_unique<serve::AnnServer>(
                    *(*shardEngines_)[s], config);
                server->start();
                cluster.topology.shards[s][r].port = server->port();
                cluster.servers[s].push_back(std::move(server));
            }
        }
        return cluster;
    }

    static void
    stopCluster(Cluster &cluster)
    {
        for (auto &shard : cluster.servers)
            for (auto &server : shard)
                if (server->running()) {
                    server->requestStop();
                    server->waitStopped();
                }
    }

    static RouterConfig
    routerConfig(const Cluster &cluster)
    {
        RouterConfig config;
        config.topology = cluster.topology;
        config.dim = data_->dim;
        config.connect_wait_ms = 2000;
        config.request_timeout = std::chrono::milliseconds(2000);
        config.hedge = false; // tests opt in explicitly
        config.probe_interval = std::chrono::milliseconds(50);
        return config;
    }

    static SearchSettings
    settings()
    {
        SearchSettings s;
        s.k = 10;
        s.ef_search = 80;
        return s;
    }

    static Dataset *data_;
    static MilvusLikeEngine *full_;
    static std::vector<std::unique_ptr<MilvusLikeEngine>> *shardEngines_;
    static std::string *cacheDir_;
};

Dataset *ClusterFixture::data_ = nullptr;
MilvusLikeEngine *ClusterFixture::full_ = nullptr;
std::vector<std::unique_ptr<MilvusLikeEngine>>
    *ClusterFixture::shardEngines_ = nullptr;
std::string *ClusterFixture::cacheDir_ = nullptr;

TEST_F(ClusterFixture, RouterMergeMatchesClientSideMerge)
{
    Cluster cluster = startCluster(2);
    RouterEngine router(routerConfig(cluster));
    ASSERT_TRUE(router.waitReady(std::chrono::seconds(5)));

    // Shard-direct clients reproduce what the router must compute:
    // per-shard partials (already in global ids) merged client-side.
    std::vector<serve::AnnClient> direct(kShards);
    for (std::size_t s = 0; s < kShards; ++s)
        direct[s].connect("127.0.0.1",
                          cluster.topology.shards[s][0].port);

    for (std::size_t q = 0; q < data_->num_queries; ++q) {
        const SearchResult routed =
            router.searchLive(data_->query(q), settings());
        std::vector<SearchResult> partials(kShards);
        for (std::size_t s = 0; s < kShards; ++s) {
            const auto response = direct[s].search(
                data_->query(q), data_->dim, settings(), q);
            ASSERT_EQ(response.status, serve::Status::Ok);
            partials[s] = response.results;
        }
        const SearchResult expected =
            dist::mergePartials(partials, settings().k);
        ASSERT_EQ(routed.size(), expected.size()) << "query " << q;
        for (std::size_t i = 0; i < routed.size(); ++i) {
            EXPECT_EQ(routed[i].id, expected[i].id)
                << "query " << q << " rank " << i;
            EXPECT_FLOAT_EQ(routed[i].distance, expected[i].distance);
        }
    }
    stopCluster(cluster);
}

TEST_F(ClusterFixture, ClusterRecallTracksSingleProcess)
{
    Cluster cluster = startCluster(1);
    RouterEngine router(routerConfig(cluster));
    ASSERT_TRUE(router.waitReady(std::chrono::seconds(5)));

    double cluster_recall = 0.0;
    double single_recall = 0.0;
    for (std::size_t q = 0; q < data_->num_queries; ++q) {
        const SearchResult routed =
            router.searchLive(data_->query(q), settings());
        const SearchResult single =
            full_->searchLive(data_->query(q), settings());
        cluster_recall += recallAtK(data_->ground_truth[q], routed,
                                    settings().k);
        single_recall += recallAtK(data_->ground_truth[q], single,
                                   settings().k);
    }
    cluster_recall /= static_cast<double>(data_->num_queries);
    single_recall /= static_cast<double>(data_->num_queries);
    // Each shard searches a graph 1/N the size with the same beam
    // budget, so the sharded run must not lose recall.
    EXPECT_GE(cluster_recall, single_recall - 1e-6);
    EXPECT_GT(cluster_recall, 0.85);
    stopCluster(cluster);
}

TEST_F(ClusterFixture, DeadShardRelaysOverloaded)
{
    Cluster cluster = startCluster(1);
    RouterConfig config = routerConfig(cluster);
    RouterEngine router(config);
    ASSERT_TRUE(router.waitReady(std::chrono::seconds(5)));

    // Front the router with a stock AnnServer so the relay is
    // observable on the wire, not just as an exception.
    serve::ServerConfig front_config;
    front_config.port = 0;
    front_config.expected_dim = data_->dim;
    front_config.exec_threads = 2;
    serve::AnnServer front(router, front_config);
    front.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", front.port());

    ASSERT_EQ(client.search(data_->query(0), data_->dim, settings(), 1)
                  .status,
              serve::Status::Ok);

    // Kill shard 1's only replica: the whole shard is gone, and the
    // router must shed with OVERLOADED instead of stalling or lying
    // with partial results.
    cluster.servers[1][0]->requestStop();
    cluster.servers[1][0]->waitStopped();

    serve::Status status = serve::Status::Ok;
    for (int attempt = 0; attempt < 10; ++attempt) {
        status = client
                     .search(data_->query(1), data_->dim, settings(),
                             100 + attempt)
                     .status;
        if (status == serve::Status::Overloaded)
            break;
    }
    EXPECT_EQ(status, serve::Status::Overloaded);
    EXPECT_GE(router.stats().ejections, 1u);

    front.requestStop();
    front.waitStopped();
    stopCluster(cluster);
}

TEST_F(ClusterFixture, ReplicaKillFailsOverAndRejoins)
{
    Cluster cluster = startCluster(2);
    RouterEngine router(routerConfig(cluster));
    ASSERT_TRUE(router.waitReady(std::chrono::seconds(5)));

    // Kill replica 1 of shard 0; queries keep completing through the
    // surviving replica (round-robin hits the corpse within a few
    // queries and fails over in-band).
    cluster.servers[0][1]->requestStop();
    cluster.servers[0][1]->waitStopped();
    const std::uint16_t dead_port = cluster.topology.shards[0][1].port;

    for (std::size_t q = 0; q < 10; ++q) {
        const SearchResult result =
            router.searchLive(data_->query(q), settings());
        EXPECT_EQ(result.size(), settings().k);
    }
    EXPECT_FALSE(router.healthMatrix()[0][1]);
    EXPECT_GE(router.stats().ejections, 1u);

    // Restart a server on the same endpoint: the probe thread must
    // re-admit it without any routing downtime.
    const auto range = dist::shardRange(data_->rows, 0, kShards);
    serve::ServerConfig config;
    config.port = dead_port;
    config.expected_dim = data_->dim;
    config.exec_threads = 2;
    config.id_offset = range.begin;
    serve::AnnServer reborn(*(*shardEngines_)[0], config);
    reborn.start();

    bool rejoined = false;
    for (int i = 0; i < 100 && !rejoined; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        rejoined = router.healthMatrix()[0][1];
    }
    EXPECT_TRUE(rejoined);
    EXPECT_GE(router.stats().rejoins, 1u);
    for (std::size_t q = 0; q < 10; ++q)
        EXPECT_EQ(router.searchLive(data_->query(q), settings()).size(),
                  settings().k);

    reborn.requestStop();
    reborn.waitStopped();
    stopCluster(cluster);
}

TEST_F(ClusterFixture, HedgingBeatsInjectedStraggler)
{
    // Replica 1 of each shard delays EVERY request by 40 ms; with a
    // warmed hedge delay clamped to <= 5 ms, any query routed to the
    // straggler re-sends to the fast replica and the hedge wins.
    Cluster cluster = startCluster(2, /*slow_replica=*/1,
                                   /*slow_us=*/40'000);
    RouterConfig config = routerConfig(cluster);
    config.hedge = true;
    config.hedge_quantile = 50.0;
    config.hedge_epoch_samples = 16;
    config.hedge_min_delay_us = 500;
    config.hedge_max_delay_us = 5'000;
    RouterEngine router(config);
    ASSERT_TRUE(router.waitReady(std::chrono::seconds(5)));

    for (std::size_t i = 0; i < 120; ++i) {
        const SearchResult result = router.searchLive(
            data_->query(i % data_->num_queries), settings());
        EXPECT_EQ(result.size(), settings().k);
    }
    const dist::RouterStats stats = router.stats();
    EXPECT_GT(stats.hedges_fired, 0u);
    EXPECT_GT(stats.hedge_wins, 0u);
    // Losers' replies were parked and later skipped, never mismatched.
    EXPECT_EQ(stats.routed, 120u);
    stopCluster(cluster);
}

} // namespace
} // namespace ann
