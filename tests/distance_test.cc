/**
 * @file
 * Unit and property tests for distance kernels, top-k, and recall.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "distance/distance.hh"
#include "distance/recall.hh"
#include "distance/topk.hh"

namespace ann {
namespace {

std::vector<float>
randomVector(Rng &rng, std::size_t dim)
{
    std::vector<float> v(dim);
    for (auto &x : v)
        x = rng.nextFloat(-1.0f, 1.0f);
    return v;
}

TEST(DistanceTest, L2MatchesNaiveImplementation)
{
    Rng rng(1);
    for (std::size_t dim : {1u, 3u, 4u, 7u, 128u, 255u}) {
        const auto a = randomVector(rng, dim);
        const auto b = randomVector(rng, dim);
        float naive = 0.0f;
        for (std::size_t i = 0; i < dim; ++i)
            naive += (a[i] - b[i]) * (a[i] - b[i]);
        EXPECT_NEAR(l2DistanceSq(a.data(), b.data(), dim), naive,
                    1e-4f * dim)
            << "dim=" << dim;
    }
}

TEST(DistanceTest, L2IsZeroOnIdenticalVectors)
{
    Rng rng(2);
    const auto a = randomVector(rng, 96);
    EXPECT_EQ(l2DistanceSq(a.data(), a.data(), 96), 0.0f);
}

TEST(DistanceTest, DotProductMatchesNaive)
{
    Rng rng(3);
    const auto a = randomVector(rng, 129);
    const auto b = randomVector(rng, 129);
    float naive = 0.0f;
    for (std::size_t i = 0; i < 129; ++i)
        naive += a[i] * b[i];
    EXPECT_NEAR(dotProduct(a.data(), b.data(), 129), naive, 1e-3f);
}

TEST(DistanceTest, CosineDistanceBounds)
{
    std::vector<float> a{1.0f, 0.0f};
    std::vector<float> b{0.0f, 1.0f};
    std::vector<float> c{-1.0f, 0.0f};
    EXPECT_NEAR(cosineDistance(a.data(), a.data(), 2), 0.0f, 1e-6f);
    EXPECT_NEAR(cosineDistance(a.data(), b.data(), 2), 1.0f, 1e-6f);
    EXPECT_NEAR(cosineDistance(a.data(), c.data(), 2), 2.0f, 1e-6f);
}

TEST(DistanceTest, CosineOnZeroVectorIsNeutral)
{
    std::vector<float> zero{0.0f, 0.0f};
    std::vector<float> a{1.0f, 1.0f};
    EXPECT_EQ(cosineDistance(zero.data(), a.data(), 2), 1.0f);
}

TEST(DistanceTest, CanonicalInnerProductIsNegatedDot)
{
    Rng rng(4);
    const auto a = randomVector(rng, 64);
    const auto b = randomVector(rng, 64);
    EXPECT_FLOAT_EQ(distance(Metric::InnerProduct, a.data(), b.data(), 64),
                    -dotProduct(a.data(), b.data(), 64));
}

TEST(DistanceTest, MetricNames)
{
    EXPECT_EQ(metricName(Metric::L2), "l2");
    EXPECT_EQ(metricName(Metric::InnerProduct), "ip");
    EXPECT_EQ(metricName(Metric::Cosine), "cosine");
}

TEST(DistanceTest, NormalizeProducesUnitNorm)
{
    Rng rng(5);
    auto a = randomVector(rng, 100);
    normalizeVector(a.data(), 100);
    EXPECT_NEAR(vectorNorm(a.data(), 100), 1.0f, 1e-5f);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop)
{
    std::vector<float> zero(8, 0.0f);
    normalizeVector(zero.data(), 8);
    for (float x : zero)
        EXPECT_EQ(x, 0.0f);
}

TEST(TopKTest, KeepsSmallestDistances)
{
    TopK top(3);
    top.push(0, 5.0f);
    top.push(1, 1.0f);
    top.push(2, 3.0f);
    top.push(3, 4.0f); // rejected, worse than current worst 5? no: 4 < 5
    top.push(4, 10.0f); // rejected
    const auto result = top.take();
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0].id, 1u);
    EXPECT_EQ(result[1].id, 2u);
    EXPECT_EQ(result[2].id, 3u);
}

TEST(TopKTest, AscendingOrderOnTake)
{
    Rng rng(6);
    TopK top(10);
    for (VectorId i = 0; i < 1000; ++i)
        top.push(i, rng.nextFloat(0.0f, 100.0f));
    const auto result = top.take();
    ASSERT_EQ(result.size(), 10u);
    for (std::size_t i = 1; i < result.size(); ++i)
        EXPECT_LE(result[i - 1].distance, result[i].distance);
}

TEST(TopKTest, FewerCandidatesThanK)
{
    TopK top(5);
    top.push(7, 2.0f);
    EXPECT_FALSE(top.full());
    const auto result = top.take();
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result[0].id, 7u);
}

TEST(TopKTest, WouldAcceptTracksWorst)
{
    TopK top(2);
    EXPECT_TRUE(top.wouldAccept(1e9f));
    top.push(0, 1.0f);
    top.push(1, 2.0f);
    EXPECT_TRUE(top.wouldAccept(1.5f));
    EXPECT_FALSE(top.wouldAccept(2.5f));
    EXPECT_FLOAT_EQ(top.worstDistance(), 2.0f);
}

TEST(TopKTest, MatchesFullSortProperty)
{
    Rng rng(8);
    for (int round = 0; round < 20; ++round) {
        std::vector<float> dists;
        TopK top(7);
        for (VectorId i = 0; i < 200; ++i) {
            const float d = rng.nextFloat(0.0f, 10.0f);
            dists.push_back(d);
            top.push(i, d);
        }
        auto sorted = dists;
        std::sort(sorted.begin(), sorted.end());
        const auto result = top.take();
        ASSERT_EQ(result.size(), 7u);
        for (std::size_t i = 0; i < 7; ++i)
            EXPECT_FLOAT_EQ(result[i].distance, sorted[i]);
    }
}

TEST(TopKTest, TiesBreakByIdRegardlessOfInsertionOrder)
{
    // Five vectors at the same distance competing for three slots:
    // the held set must be the three smallest ids no matter which
    // order they arrive in, or search results would depend on
    // traversal order (and parallel execution would diverge).
    const std::vector<VectorId> orders[] = {
        {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 4, 0, 3, 1},
    };
    for (const auto &order : orders) {
        TopK top(3);
        for (VectorId id : order)
            top.push(id, 1.0f);
        const auto result = top.take();
        ASSERT_EQ(result.size(), 3u);
        EXPECT_EQ(result[0].id, 0u);
        EXPECT_EQ(result[1].id, 1u);
        EXPECT_EQ(result[2].id, 2u);
    }
}

TEST(TopKTest, TieOnWorstReplacesLargerIdOnly)
{
    TopK top(2);
    top.push(5, 1.0f);
    top.push(9, 2.0f);
    top.push(7, 2.0f); // ties the worst, smaller id -> replaces 9
    auto result = top.take();
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[1].id, 7u);

    TopK top2(2);
    top2.push(5, 1.0f);
    top2.push(7, 2.0f);
    top2.push(9, 2.0f); // ties the worst, larger id -> rejected
    result = top2.take();
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[1].id, 7u);
}

TEST(TopKTest, DrainIntoMergesShardPartials)
{
    // The cluster router merges per-shard partial top-k lists by
    // pushing every partial into one TopK and draining — verify the
    // drained list is the global top-k in ascending order.
    const std::vector<std::vector<Neighbor>> partials = {
        {{0, 0.10f}, {1, 0.50f}, {2, 0.90f}},
        {{10, 0.20f}, {11, 0.30f}, {12, 0.95f}},
        {{20, 0.05f}, {21, 0.80f}},
    };
    TopK topk(4);
    for (const auto &partial : partials)
        for (const Neighbor &n : partial)
            topk.push(n.id, n.distance);
    SearchResult out;
    topk.drainInto(out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].id, 20u);
    EXPECT_EQ(out[1].id, 0u);
    EXPECT_EQ(out[2].id, 10u);
    EXPECT_EQ(out[3].id, 11u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].distance, out[i].distance);
}

TEST(TopKTest, DrainIntoMatchesTakeAndSupportsReuse)
{
    TopK a(5);
    TopK b(5);
    for (const float d : {0.9f, 0.1f, 0.5f, 0.3f, 0.7f, 0.2f}) {
        const auto id = static_cast<VectorId>(d * 100.0f);
        a.push(id, d);
        b.push(id, d);
    }
    SearchResult drained;
    a.drainInto(drained);
    const SearchResult taken = b.take();
    ASSERT_EQ(drained.size(), taken.size());
    for (std::size_t i = 0; i < drained.size(); ++i) {
        EXPECT_EQ(drained[i].id, taken[i].id);
        EXPECT_EQ(drained[i].distance, taken[i].distance);
    }
    // Reuse: drainInto overwrites stale contents and the heap re-arms.
    a.reset(2);
    a.push(7, 0.2f);
    a.push(8, 0.1f);
    a.drainInto(drained);
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].id, 8u);
    EXPECT_EQ(drained[1].id, 7u);
}

TEST(TopKTest, DuplicateIdsOccupySeparateSlots)
{
    // TopK does not deduplicate: the same id pushed twice (replayed
    // or overlapping partials) takes two of the k slots. The router's
    // mergePartials carries a seen-set for exactly this reason.
    TopK topk(3);
    topk.push(5, 0.1f);
    topk.push(5, 0.1f);
    topk.push(6, 0.2f);
    topk.push(7, 0.3f);
    SearchResult out;
    topk.drainInto(out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].id, 5u);
    EXPECT_EQ(out[1].id, 5u);
    EXPECT_EQ(out[2].id, 6u);
}

TEST(BruteForceTest, FindsExactNeighbor)
{
    // 4 points on a line; query nearest to point 2.
    std::vector<float> data{0.0f, 1.0f, 2.0f, 10.0f};
    MatrixView view{data.data(), 4, 1};
    const float query = 2.2f;
    const auto result = bruteForceSearch(view, &query, Metric::L2, 2);
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0].id, 2u);
    EXPECT_EQ(result[1].id, 1u);
}

TEST(RecallTest, PerfectAndPartial)
{
    std::vector<VectorId> truth{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{1, 2, 3}, 3),
                     1.0);
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{1, 9, 8}, 3),
                     1.0 / 3.0);
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{}, 3), 0.0);
}

TEST(RecallTest, OnlyFirstKOfTruthCounts)
{
    std::vector<VectorId> truth{1, 2, 3, 4, 5};
    // id 5 is in the truth list but outside the top-2 cutoff.
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{5, 1}, 2),
                     0.5);
}

TEST(RecallTest, ClampsToShortGroundTruth)
{
    // Ground truth shorter than k: recall is measured at the available
    // depth instead of aborting the run.
    std::vector<VectorId> truth{1, 2, 3};
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{1, 2, 9}, 5),
                     2.0 / 3.0);
    EXPECT_DOUBLE_EQ(recallAtK(truth, std::vector<VectorId>{1, 2, 3}, 8),
                     1.0);
}

TEST(SimdTest, DispatchedKernelsMatchScalarReference)
{
    Rng rng(99);
    for (const std::size_t dim : {1u, 7u, 8u, 16u, 33u, 128u, 100u}) {
        std::vector<float> a(dim), b(dim);
        for (std::size_t i = 0; i < dim; ++i) {
            a[i] = rng.nextFloat(-2.0f, 2.0f);
            b[i] = rng.nextFloat(-2.0f, 2.0f);
        }
        const float tol = 1e-4f * static_cast<float>(dim);
        EXPECT_NEAR(l2DistanceSq(a.data(), b.data(), dim),
                    l2DistanceSqScalar(a.data(), b.data(), dim), tol)
            << "dim " << dim;
        EXPECT_NEAR(dotProduct(a.data(), b.data(), dim),
                    dotProductScalar(a.data(), b.data(), dim), tol)
            << "dim " << dim;
    }
}

TEST(SimdTest, AdcScanMatchesScalarReference)
{
    Rng rng(123);
    for (const std::size_t m : {1u, 4u, 8u, 16u, 23u, 64u}) {
        const std::size_t ksub = 256;
        std::vector<float> table(m * ksub);
        for (auto &x : table)
            x = rng.nextFloat(0.0f, 4.0f);
        std::vector<std::uint8_t> codes(m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextBelow(ksub));
        EXPECT_NEAR(pqAdcDistance(table.data(), m, ksub, codes.data()),
                    pqAdcDistanceScalar(table.data(), m, ksub,
                                        codes.data()),
                    1e-4f * static_cast<float>(m))
            << "m " << m;
    }
}

TEST(SimdTest, BatchedAdcBitIdenticalToSingleCodeKernel)
{
    // The batched kernel's contract is stronger than "close": it
    // replicates the single-code kernel's reduction order in the same
    // SIMD tier, so each lane matches bit for bit. This is what lets
    // $ANN_ADC_BATCH flip without changing a single result.
    Rng rng(321);
    for (const std::size_t m : {1u, 4u, 8u, 16u, 23u, 64u}) {
        const std::size_t ksub = 256;
        std::vector<float> table(m * ksub);
        for (auto &x : table)
            x = rng.nextFloat(0.0f, 4.0f);
        std::vector<std::uint8_t> codes(4 * m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextBelow(ksub));
        const std::uint8_t *ptrs[4] = {
            codes.data(), codes.data() + m, codes.data() + 2 * m,
            codes.data() + 3 * m};

        float batched[4];
        pqAdcDistanceBatch4(table.data(), m, ksub, ptrs, batched);
        float scalar_batched[4];
        pqAdcDistanceBatch4Scalar(table.data(), m, ksub, ptrs,
                                  scalar_batched);
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_EQ(batched[i],
                      pqAdcDistance(table.data(), m, ksub, ptrs[i]))
                << "m " << m << " lane " << i;
            EXPECT_EQ(scalar_batched[i],
                      pqAdcDistanceScalar(table.data(), m, ksub,
                                          ptrs[i]))
                << "m " << m << " lane " << i;
        }
    }
}

TEST(SimdTest, LevelNameIsStable)
{
    const SimdLevel level = activeSimdLevel();
    EXPECT_STREQ(simdLevelName(level),
                 level == SimdLevel::Avx2 ? "avx2" : "scalar");
}

TEST(RecallTest, MeanOverBatch)
{
    std::vector<std::vector<VectorId>> truth{{1, 2}, {3, 4}};
    std::vector<SearchResult> found{
        {{1, 0.1f}, {2, 0.2f}},
        {{9, 0.1f}, {8, 0.2f}},
    };
    EXPECT_DOUBLE_EQ(meanRecallAtK(truth, found, 2), 0.5);
}

class BruteForceProperty : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BruteForceProperty, SelfQueryReturnsSelfFirst)
{
    const std::size_t dim = GetParam();
    Rng rng(42 + dim);
    const std::size_t rows = 50;
    std::vector<float> data(rows * dim);
    for (auto &x : data)
        x = rng.nextFloat(-1.0f, 1.0f);
    MatrixView view{data.data(), rows, dim};
    for (std::size_t q = 0; q < rows; q += 7) {
        const auto result =
            bruteForceSearch(view, view.row(q), Metric::L2, 1);
        ASSERT_EQ(result.size(), 1u);
        EXPECT_EQ(result[0].id, q);
        EXPECT_EQ(result[0].distance, 0.0f);
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, BruteForceProperty,
                         ::testing::Values(2, 8, 31, 64, 128));

} // namespace
} // namespace ann
