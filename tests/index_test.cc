/**
 * @file
 * Tests for Flat, IVF, and HNSW indexes: correctness, recall floors,
 * parameter monotonicity, serialization, and instrumentation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hh"
#include "common/serialize.hh"
#include "distance/recall.hh"
#include "index/flat_index.hh"
#include "index/hnsw_index.hh"
#include "index/ivf_index.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::groundTruth;
using testutil::makeClusteredData;
using testutil::TestData;

class IndexFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(2000, 50, 32, 555));
        truth_ = new std::vector<std::vector<VectorId>>(
            groundTruth(*data_, 10));
    }
    static void
    TearDownTestSuite()
    {
        delete data_;
        delete truth_;
        data_ = nullptr;
        truth_ = nullptr;
    }

    template <typename SearchFn>
    double
    meanRecall(SearchFn &&search) const
    {
        double acc = 0.0;
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto result = search(data_->queryView().row(q));
            acc += recallAtK((*truth_)[q], result, 10);
        }
        return acc / static_cast<double>(data_->num_queries);
    }

    static TestData *data_;
    static std::vector<std::vector<VectorId>> *truth_;
};

TestData *IndexFixture::data_ = nullptr;
std::vector<std::vector<VectorId>> *IndexFixture::truth_ = nullptr;

TEST_F(IndexFixture, FlatIsExact)
{
    FlatIndex flat;
    flat.build(data_->baseView());
    EXPECT_EQ(flat.size(), 2000u);
    const double recall =
        meanRecall([&](const float *q) { return flat.search(q, 10); });
    EXPECT_DOUBLE_EQ(recall, 1.0);
}

TEST_F(IndexFixture, FlatRecordsOpCounts)
{
    FlatIndex flat;
    flat.build(data_->baseView());
    SearchTraceRecorder recorder;
    flat.search(data_->queryView().row(0), 10, &recorder);
    const OpCounts totals = recorder.totals();
    EXPECT_EQ(totals.full_distances, 2000u);
    EXPECT_EQ(totals.rows_scanned, 2000u);
}

TEST_F(IndexFixture, IvfReachesHighRecallWithEnoughProbes)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 64;
    ivf.build(data_->baseView(), build);

    IvfSearchParams search;
    search.k = 10;
    search.nprobe = 16;
    const double recall = meanRecall([&](const float *q) {
        return ivf.search(q, search);
    });
    EXPECT_GT(recall, 0.9);
}

TEST_F(IndexFixture, IvfRecallGrowsWithNprobe)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 64;
    ivf.build(data_->baseView(), build);

    double last = -1.0;
    for (std::size_t nprobe : {1u, 4u, 16u, 64u}) {
        IvfSearchParams search;
        search.k = 10;
        search.nprobe = nprobe;
        const double recall = meanRecall([&](const float *q) {
            return ivf.search(q, search);
        });
        EXPECT_GE(recall, last - 1e-9) << "nprobe=" << nprobe;
        last = recall;
    }
    // nprobe = nlist means an exhaustive scan -> exact results.
    EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST_F(IndexFixture, IvfScannedRowsGrowWithNprobe)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 64;
    ivf.build(data_->baseView(), build);

    auto scanned = [&](std::size_t nprobe) {
        SearchTraceRecorder recorder;
        IvfSearchParams search;
        search.nprobe = nprobe;
        ivf.search(data_->queryView().row(0), search, &recorder);
        return recorder.totals().rows_scanned;
    };
    EXPECT_LT(scanned(2), scanned(32));
}

TEST_F(IndexFixture, IvfPqStillFindsNeighbors)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 32;
    build.use_pq = true;
    build.pq.m = 16;
    build.pq.ksub = 256;
    ivf.build(data_->baseView(), build);
    EXPECT_TRUE(ivf.usesPq());
    EXPECT_EQ(ivf.entryBytes(), 16u);

    IvfSearchParams search;
    search.k = 10;
    search.nprobe = 16;
    const double recall = meanRecall([&](const float *q) {
        return ivf.search(q, search);
    });
    // PQ costs accuracy (the paper's LanceDB-IVF observation) but must
    // stay far above random.
    EXPECT_GT(recall, 0.5);
    EXPECT_LT(recall, 1.0);
}

TEST_F(IndexFixture, IvfSaveLoadPreservesResults)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 32;
    ivf.build(data_->baseView(), build);

    const std::string path = "ivf_test.bin";
    {
        BinaryWriter writer(path, "IVFT", 1);
        ivf.save(writer);
        writer.close();
    }
    IvfIndex loaded;
    {
        BinaryReader reader(path, "IVFT", 1);
        loaded.load(reader);
    }
    IvfSearchParams search;
    search.nprobe = 8;
    for (std::size_t q = 0; q < 10; ++q) {
        const float *query = data_->queryView().row(q);
        EXPECT_EQ(ivf.search(query, search), loaded.search(query, search));
    }
    std::remove(path.c_str());
}

TEST_F(IndexFixture, IvfMemoryAccounting)
{
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 16;
    ivf.build(data_->baseView(), build);
    // At least the raw vectors must be accounted for.
    EXPECT_GE(ivf.memoryBytes(), 2000u * 32u * sizeof(float));
}

TEST_F(IndexFixture, HnswReachesHighRecall)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 16;
    build.ef_construction = 100;
    hnsw.build(data_->baseView(), build);

    HnswSearchParams search;
    search.k = 10;
    search.ef_search = 64;
    const double recall = meanRecall([&](const float *q) {
        return hnsw.search(q, search);
    });
    EXPECT_GT(recall, 0.95);
}

TEST_F(IndexFixture, HnswRecallGrowsWithEfSearch)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 60;
    hnsw.build(data_->baseView(), build);

    auto recall_at = [&](std::size_t ef) {
        HnswSearchParams search;
        search.k = 10;
        search.ef_search = ef;
        return meanRecall([&](const float *q) {
            return hnsw.search(q, search);
        });
    };
    EXPECT_GE(recall_at(128) + 1e-9, recall_at(10));
}

TEST_F(IndexFixture, HnswDegreeBounds)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 40;
    hnsw.build(data_->baseView(), build);

    for (VectorId v = 0; v < hnsw.size(); v += 37) {
        for (int level = 0; level <= hnsw.nodeLevel(v); ++level) {
            const std::size_t cap = level == 0 ? 16 : 8;
            EXPECT_LE(hnsw.neighbors(v, level).size(), cap)
                << "node " << v << " level " << level;
        }
    }
}

TEST_F(IndexFixture, HnswNeighborsAreValidIds)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 40;
    hnsw.build(data_->baseView(), build);
    for (VectorId v = 0; v < hnsw.size(); v += 53) {
        for (VectorId nb : hnsw.neighbors(v, 0)) {
            EXPECT_LT(nb, hnsw.size());
            EXPECT_NE(nb, v);
        }
    }
}

TEST_F(IndexFixture, HnswSqTradesRecallForMemory)
{
    HnswIndex plain, quantized;
    HnswBuildParams build;
    build.m = 16;
    build.ef_construction = 100;
    plain.build(data_->baseView(), build);
    build.use_sq = true;
    quantized.build(data_->baseView(), build);

    EXPECT_LT(quantized.memoryBytes(), plain.memoryBytes());

    HnswSearchParams search;
    search.k = 10;
    search.ef_search = 64;
    const double recall_q = meanRecall([&](const float *q) {
        return quantized.search(q, search);
    });
    EXPECT_GT(recall_q, 0.8); // still works, just degraded
}

TEST_F(IndexFixture, HnswSaveLoadPreservesResults)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 60;
    hnsw.build(data_->baseView(), build);

    const std::string path = "hnsw_test.bin";
    {
        BinaryWriter writer(path, "HNT", 1);
        hnsw.save(writer);
        writer.close();
    }
    HnswIndex loaded;
    {
        BinaryReader reader(path, "HNT", 1);
        loaded.load(reader);
    }
    HnswSearchParams search;
    search.ef_search = 32;
    for (std::size_t q = 0; q < 10; ++q) {
        const float *query = data_->queryView().row(q);
        EXPECT_EQ(hnsw.search(query, search),
                  loaded.search(query, search));
    }
    std::remove(path.c_str());
}

TEST_F(IndexFixture, HnswRecordsDistanceOps)
{
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 60;
    hnsw.build(data_->baseView(), build);

    SearchTraceRecorder recorder;
    HnswSearchParams search;
    search.ef_search = 50;
    hnsw.search(data_->queryView().row(0), search, &recorder);
    recorder.finish();
    EXPECT_GT(recorder.totals().full_distances, 50u);
    EXPECT_EQ(recorder.totalSectors(), 0u); // memory-based: no I/O
}

TEST(IndexErrorTest, EmptyBuildRejected)
{
    FlatIndex flat;
    MatrixView empty{nullptr, 0, 8};
    EXPECT_THROW(flat.build(empty), FatalError);

    IvfIndex ivf;
    EXPECT_THROW(ivf.build(empty, IvfBuildParams{}), FatalError);

    HnswIndex hnsw;
    EXPECT_THROW(hnsw.build(empty, HnswBuildParams{}), FatalError);
}

TEST(IndexErrorTest, BadParamsRejected)
{
    testutil::TestData small = makeClusteredData(10, 1, 4, 1);
    IvfIndex ivf;
    IvfBuildParams build;
    build.nlist = 100; // > rows
    EXPECT_THROW(ivf.build(small.baseView(), build), FatalError);

    HnswIndex hnsw;
    HnswBuildParams hbuild;
    hbuild.m = 1;
    EXPECT_THROW(hnsw.build(small.baseView(), hbuild), FatalError);
}

/** Parameterized sweep: HNSW stays sane across M values. */
class HnswParamSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(HnswParamSweep, BuildsAndSearchesAcrossM)
{
    const std::size_t m = GetParam();
    testutil::TestData data = makeClusteredData(500, 10, 16, 77);
    HnswIndex hnsw;
    HnswBuildParams build;
    build.m = m;
    build.ef_construction = std::max<std::size_t>(m, 40);
    hnsw.build(data.baseView(), build);
    HnswSearchParams search;
    search.k = 5;
    search.ef_search = 40;
    const auto truth = groundTruth(data, 5);
    double recall = 0.0;
    for (std::size_t q = 0; q < data.num_queries; ++q)
        recall += recallAtK(truth[q],
                            hnsw.search(data.queryView().row(q), search),
                            5);
    recall /= static_cast<double>(data.num_queries);
    EXPECT_GT(recall, 0.8) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(MValues, HnswParamSweep,
                         ::testing::Values(4, 8, 16, 32));

} // namespace
} // namespace ann
