/**
 * @file
 * Tests for the serving subsystem: wire-protocol robustness, the
 * loopback server (results, admission control, metrics, graceful
 * drain), and concurrent searches racing streaming mutations through
 * the engine gate (the TSan target).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "distance/recall.hh"
#include "engine/milvus_like.hh"
#include "learn/policy.hh"
#include "serve/client.hh"
#include "serve/engine_gate.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "storage/io_backend.hh"
#include "test_util.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

using engine::MilvusIndexKind;
using engine::MilvusLikeEngine;
using engine::SearchSettings;
using workload::Dataset;
using workload::GeneratorSpec;

// ------------------------------------------------------- protocol

TEST(ProtocolTest, ShortValidPrefixNeedsMore)
{
    std::vector<std::uint8_t> frame;
    serve::encodeMetricsRequest(&frame);
    serve::FrameHeader header;
    for (std::size_t len = 0; len < serve::kHeaderBytes; ++len)
        EXPECT_EQ(serve::decodeHeader(frame.data(), len, &header),
                  serve::DecodeResult::NeedMore)
            << "prefix length " << len;
    EXPECT_EQ(serve::decodeHeader(frame.data(), serve::kHeaderBytes,
                                  &header),
              serve::DecodeResult::Ok);
    EXPECT_EQ(header.type, serve::FrameType::MetricsRequest);
    EXPECT_EQ(header.payload_bytes, 0u);
}

TEST(ProtocolTest, BadMagicRejectedBeforeFullHeader)
{
    const std::uint8_t garbage[] = {'G', 'E', 'T', ' ', '/'};
    serve::FrameHeader header;
    // One wrong byte is enough — no waiting for 12 bytes.
    EXPECT_EQ(serve::decodeHeader(garbage, 1, &header),
              serve::DecodeResult::Malformed);
    EXPECT_EQ(serve::decodeHeader(garbage, sizeof(garbage), &header),
              serve::DecodeResult::Malformed);
}

TEST(ProtocolTest, HeaderFieldValidation)
{
    std::vector<std::uint8_t> frame;
    serve::encodeMetricsRequest(&frame);
    serve::FrameHeader header;

    auto mutated = frame;
    mutated[4] = 99; // unknown frame type
    EXPECT_EQ(serve::decodeHeader(mutated.data(), mutated.size(),
                                  &header),
              serve::DecodeResult::Malformed);

    mutated = frame;
    mutated[6] = 1; // reserved bits must be zero
    EXPECT_EQ(serve::decodeHeader(mutated.data(), mutated.size(),
                                  &header),
              serve::DecodeResult::Malformed);

    mutated = frame;
    mutated[8] = 0xFF; // oversized payload prefix
    mutated[9] = 0xFF;
    mutated[10] = 0xFF;
    mutated[11] = 0x7F;
    EXPECT_EQ(serve::decodeHeader(mutated.data(), mutated.size(),
                                  &header),
              serve::DecodeResult::Malformed);
}

TEST(ProtocolTest, SearchRequestRoundTrip)
{
    serve::SearchRequest request;
    request.request_id = 0x0123456789ABCDEFull;
    request.settings.k = 7;
    request.settings.nprobe = 3;
    request.settings.ef_search = 41;
    request.settings.search_list = 23;
    request.settings.beam_width = 5;
    request.query = {1.5f, -2.25f, 0.0f, 3.0f};

    std::vector<std::uint8_t> frame;
    serve::encodeSearchRequest(request, &frame);
    serve::FrameHeader header;
    ASSERT_EQ(serve::decodeHeader(frame.data(), frame.size(), &header),
              serve::DecodeResult::Ok);
    ASSERT_EQ(header.type, serve::FrameType::SearchRequest);
    ASSERT_EQ(frame.size(), serve::kHeaderBytes + header.payload_bytes);

    serve::SearchRequest decoded;
    ASSERT_EQ(serve::decodeSearchRequest(
                  frame.data() + serve::kHeaderBytes,
                  header.payload_bytes, &decoded),
              serve::DecodeResult::Ok);
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.settings.k, request.settings.k);
    EXPECT_EQ(decoded.settings.nprobe, request.settings.nprobe);
    EXPECT_EQ(decoded.settings.ef_search, request.settings.ef_search);
    EXPECT_EQ(decoded.settings.search_list,
              request.settings.search_list);
    EXPECT_EQ(decoded.settings.beam_width,
              request.settings.beam_width);
    EXPECT_EQ(decoded.query, request.query);
}

TEST(ProtocolTest, SearchRequestLengthMismatchIsMalformed)
{
    serve::SearchRequest request;
    request.query = {1.0f, 2.0f};
    std::vector<std::uint8_t> frame;
    serve::encodeSearchRequest(request, &frame);
    const std::uint8_t *payload = frame.data() + serve::kHeaderBytes;
    const std::size_t len = frame.size() - serve::kHeaderBytes;

    serve::SearchRequest decoded;
    // Truncated payload (the last float is cut short).
    EXPECT_EQ(serve::decodeSearchRequest(payload, len - 1, &decoded),
              serve::DecodeResult::Malformed);
    // Empty payload.
    EXPECT_EQ(serve::decodeSearchRequest(payload, 0, &decoded),
              serve::DecodeResult::Malformed);
    // Trailing bytes beyond the declared vector.
    auto padded = frame;
    padded.push_back(0);
    EXPECT_EQ(serve::decodeSearchRequest(
                  padded.data() + serve::kHeaderBytes, len + 1,
                  &decoded),
              serve::DecodeResult::Malformed);
    // dim field claiming more floats than the payload carries.
    auto lying = frame;
    lying[serve::kHeaderBytes + 28] = 0xFF; // dim is at payload+28
    EXPECT_EQ(serve::decodeSearchRequest(
                  lying.data() + serve::kHeaderBytes, len, &decoded),
              serve::DecodeResult::Malformed);
}

TEST(ProtocolTest, SearchResponseRoundTripAndValidation)
{
    serve::SearchResponse response;
    response.request_id = 42;
    response.status = serve::Status::Overloaded;
    response.queue_ns = 1234;
    response.exec_ns = 5678;
    response.results = {{3, 0.5f}, {9, 1.25f}};

    std::vector<std::uint8_t> frame;
    serve::encodeSearchResponse(response, &frame);
    serve::FrameHeader header;
    ASSERT_EQ(serve::decodeHeader(frame.data(), frame.size(), &header),
              serve::DecodeResult::Ok);
    serve::SearchResponse decoded;
    ASSERT_EQ(serve::decodeSearchResponse(
                  frame.data() + serve::kHeaderBytes,
                  header.payload_bytes, &decoded),
              serve::DecodeResult::Ok);
    EXPECT_EQ(decoded.request_id, 42u);
    EXPECT_EQ(decoded.status, serve::Status::Overloaded);
    EXPECT_EQ(decoded.queue_ns, 1234u);
    EXPECT_EQ(decoded.exec_ns, 5678u);
    ASSERT_EQ(decoded.results.size(), 2u);
    EXPECT_EQ(decoded.results[1].id, 9u);
    EXPECT_FLOAT_EQ(decoded.results[1].distance, 1.25f);

    // An out-of-range status value must not decode.
    auto bad = frame;
    bad[serve::kHeaderBytes + 8] = 0x77;
    EXPECT_EQ(serve::decodeSearchResponse(
                  bad.data() + serve::kHeaderBytes,
                  header.payload_bytes, &decoded),
              serve::DecodeResult::Malformed);
}

TEST(ProtocolTest, MetricsRoundTrip)
{
    serve::MetricsSnapshot snapshot;
    snapshot.uptime_ns = 1;
    snapshot.received = 100;
    snapshot.completed = 90;
    snapshot.shed = 10;
    snapshot.qps = 123.5;
    snapshot.p999_us = 42.25;
    snapshot.cache_deduped = 7;
    snapshot.eff_queue_depth = 3.75;

    std::vector<std::uint8_t> frame;
    serve::encodeMetricsResponse(snapshot, &frame);
    serve::FrameHeader header;
    ASSERT_EQ(serve::decodeHeader(frame.data(), frame.size(), &header),
              serve::DecodeResult::Ok);
    serve::MetricsSnapshot decoded;
    ASSERT_EQ(serve::decodeMetricsResponse(
                  frame.data() + serve::kHeaderBytes,
                  header.payload_bytes, &decoded),
              serve::DecodeResult::Ok);
    EXPECT_EQ(decoded.received, 100u);
    EXPECT_EQ(decoded.completed, 90u);
    EXPECT_EQ(decoded.shed, 10u);
    EXPECT_DOUBLE_EQ(decoded.qps, 123.5);
    EXPECT_DOUBLE_EQ(decoded.p999_us, 42.25);
    EXPECT_EQ(decoded.cache_deduped, 7u);
    EXPECT_DOUBLE_EQ(decoded.eff_queue_depth, 3.75);
}

// ------------------------------------------------------- loopback

/** Small shared dataset + prepared engine for the loopback tests. */
class ServeFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cacheDir_ = new testutil::TempDir("serve_test_cache");
        GeneratorSpec spec;
        spec.name = "serve-test";
        spec.rows = 4000;
        spec.dim = 16;
        spec.num_queries = 50;
        spec.clusters = 12;
        spec.gt_k = 10;
        spec.seed = 11;
        data_ = new Dataset(generateDataset(spec));
        engine_ = new MilvusLikeEngine(MilvusIndexKind::Hnsw);
        engine_->prepare(*data_, cacheDir_->path());
    }

    static void
    TearDownTestSuite()
    {
        delete engine_;
        delete data_;
        delete cacheDir_;
        engine_ = nullptr;
        data_ = nullptr;
        cacheDir_ = nullptr;
    }

    serve::ServerConfig
    baseConfig() const
    {
        serve::ServerConfig config;
        config.port = 0; // ephemeral
        config.expected_dim = data_->dim;
        config.exec_threads = 2;
        return config;
    }

    SearchSettings
    settings() const
    {
        SearchSettings s;
        s.k = 10;
        s.ef_search = 50;
        return s;
    }

    /** Raw (non-protocol) TCP connection for robustness tests. */
    static int
    rawConnect(std::uint16_t port)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<const sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    }

    /** @return true when the server closed the connection. */
    static bool
    peerClosed(int fd)
    {
        std::uint8_t byte;
        const ssize_t r = ::recv(fd, &byte, 1, 0);
        return r == 0;
    }

    static Dataset *data_;
    static MilvusLikeEngine *engine_;
    static testutil::TempDir *cacheDir_;
};

Dataset *ServeFixture::data_ = nullptr;
MilvusLikeEngine *ServeFixture::engine_ = nullptr;
testutil::TempDir *ServeFixture::cacheDir_ = nullptr;

TEST_F(ServeFixture, SearchMatchesInProcessResults)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    double remote_recall = 0.0;
    double local_recall = 0.0;
    for (std::size_t q = 0; q < 20; ++q) {
        const auto response =
            client.search(data_->query(q), data_->dim, settings(), q);
        ASSERT_EQ(response.status, serve::Status::Ok);
        const SearchResult local =
            engine_->searchLive(data_->query(q), settings());
        ASSERT_EQ(response.results.size(), local.size());
        for (std::size_t i = 0; i < local.size(); ++i) {
            EXPECT_EQ(response.results[i].id, local[i].id);
            EXPECT_FLOAT_EQ(response.results[i].distance,
                            local[i].distance);
        }
        remote_recall += recallAtK(data_->ground_truth[q],
                                   response.results, settings().k);
        local_recall +=
            recallAtK(data_->ground_truth[q], local, settings().k);
        EXPECT_GT(response.exec_ns, 0u);
    }
    // The network layer must be recall-neutral by construction.
    EXPECT_DOUBLE_EQ(remote_recall, local_recall);
    EXPECT_GT(remote_recall / 20.0, 0.85);
}

TEST_F(ServeFixture, PipelinedRequestsMatchByRequestId)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    constexpr std::uint64_t kCount = 24;
    for (std::uint64_t id = 0; id < kCount; ++id)
        client.sendSearch(data_->query(id % data_->num_queries),
                          data_->dim, settings(), id);
    std::vector<bool> seen(kCount, false);
    for (std::uint64_t i = 0; i < kCount; ++i) {
        const auto response = client.recvSearchResponse();
        ASSERT_EQ(response.status, serve::Status::Ok);
        ASSERT_LT(response.request_id, kCount);
        EXPECT_FALSE(seen[response.request_id]);
        seen[response.request_id] = true;
    }
}

TEST_F(ServeFixture, MalformedSearchSettingsGetBadRequest)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    // Wrong dimensionality (the server expects data_->dim).
    std::vector<float> short_query(8, 0.0f);
    auto response =
        client.search(short_query.data(), short_query.size(),
                      settings(), 1);
    EXPECT_EQ(response.status, serve::Status::BadRequest);
    EXPECT_TRUE(response.results.empty());

    // k = 0 is semantically invalid.
    SearchSettings zero_k = settings();
    zero_k.k = 0;
    response = client.search(data_->query(0), data_->dim, zero_k, 2);
    EXPECT_EQ(response.status, serve::Status::BadRequest);

    // The connection survives bad requests.
    response = client.search(data_->query(0), data_->dim, settings(), 3);
    EXPECT_EQ(response.status, serve::Status::Ok);
}

TEST_F(ServeFixture, AdmissionControlShedsBeyondQueueLimit)
{
    serve::ServerConfig config = baseConfig();
    config.queue_limit = 2;
    config.max_batch = 1;
    serve::AnnServer server(*engine_, config);
    server.start();

    // Hold the engine gate exclusively so the batch worker blocks on
    // its first request and the queue stays full behind it.
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<bool> holding{false};
    std::thread holder([&] {
        server.gate().mutate([&](engine::VectorDbEngine &) {
            holding.store(true);
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return release; });
        });
    });
    while (!holding.load())
        std::this_thread::yield();

    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());
    constexpr std::uint64_t kCount = 40;
    for (std::uint64_t id = 0; id < kCount; ++id)
        client.sendSearch(data_->query(id % data_->num_queries),
                          data_->dim, settings(), id);

    // Wait until every request reached admission control, then let
    // the blocked batch run.
    while (server.metrics().received < kCount)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    holder.join();

    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    for (std::uint64_t i = 0; i < kCount; ++i) {
        const auto response = client.recvSearchResponse();
        if (response.status == serve::Status::Ok)
            ok++;
        else if (response.status == serve::Status::Overloaded)
            overloaded++;
    }
    EXPECT_EQ(ok + overloaded, kCount);
    EXPECT_GE(overloaded, 1u);
    // queue_limit admitted + the one the worker already held.
    EXPECT_LE(ok, config.queue_limit + config.max_batch);

    const auto m2 = server.metrics();
    EXPECT_EQ(m2.shed, overloaded);
    EXPECT_EQ(m2.completed, ok);
    EXPECT_EQ(m2.received, kCount);
}

TEST_F(ServeFixture, GarbageBytesCloseOnlyThatConnection)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();

    const int fd = rawConnect(server.port());
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
    EXPECT_TRUE(peerClosed(fd));
    ::close(fd);

    // The server keeps serving protocol-speaking clients.
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());
    const auto response =
        client.search(data_->query(0), data_->dim, settings(), 1);
    EXPECT_EQ(response.status, serve::Status::Ok);
    EXPECT_GE(server.metrics().protocol_errors, 1u);
}

TEST_F(ServeFixture, OversizedLengthPrefixClosesConnection)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();

    const int fd = rawConnect(server.port());
    // Valid magic + type, payload_bytes far beyond kMaxPayloadBytes.
    std::uint8_t header[serve::kHeaderBytes] = {
        'A', 'N', 'N', '1', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F};
    ASSERT_EQ(::send(fd, header, sizeof(header), 0),
              static_cast<ssize_t>(sizeof(header)));
    EXPECT_TRUE(peerClosed(fd));
    ::close(fd);
    EXPECT_GE(server.metrics().protocol_errors, 1u);
}

TEST_F(ServeFixture, MidRequestDisconnectLeavesServerHealthy)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();

    // A header promising 120 payload bytes, then 10 bytes, then gone.
    {
        const int fd = rawConnect(server.port());
        std::uint8_t header[serve::kHeaderBytes] = {
            'A', 'N', 'N', '1', 1, 0, 0, 0, 120, 0, 0, 0};
        ASSERT_EQ(::send(fd, header, sizeof(header), 0),
                  static_cast<ssize_t>(sizeof(header)));
        const std::uint8_t partial[10] = {};
        ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
                  static_cast<ssize_t>(sizeof(partial)));
        ::close(fd);
    }
    // A partial header, then gone.
    {
        const int fd = rawConnect(server.port());
        ASSERT_EQ(::send(fd, "ANN", 3, 0), 3);
        ::close(fd);
    }

    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());
    for (std::uint64_t id = 0; id < 5; ++id) {
        const auto response =
            client.search(data_->query(id), data_->dim, settings(), id);
        EXPECT_EQ(response.status, serve::Status::Ok);
    }
}

TEST_F(ServeFixture, MetricsEndpointCountsTraffic)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    constexpr std::uint64_t kCount = 12;
    for (std::uint64_t id = 0; id < kCount; ++id)
        ASSERT_EQ(client
                      .search(data_->query(id % data_->num_queries),
                              data_->dim, settings(), id)
                      .status,
                  serve::Status::Ok);

    const auto snapshot = client.metrics();
    EXPECT_EQ(snapshot.received, kCount);
    EXPECT_EQ(snapshot.completed, kCount);
    EXPECT_EQ(snapshot.shed, 0u);
    EXPECT_EQ(snapshot.open_connections, 1u);
    EXPECT_GE(snapshot.batches, 1u);
    EXPECT_GT(snapshot.p50_us, 0.0);
    EXPECT_GE(snapshot.p999_us, snapshot.p50_us);
    EXPECT_GT(snapshot.qps, 0.0);
}

TEST_F(ServeFixture, GracefulDrainAnswersQueuedWork)
{
    serve::ServerConfig config = baseConfig();
    config.max_batch = 1;
    serve::AnnServer server(*engine_, config);
    server.start();

    // Block the worker mid-batch, queue more work, then stop: the
    // drain must answer everything already admitted.
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<bool> holding{false};
    std::thread holder([&] {
        server.gate().mutate([&](engine::VectorDbEngine &) {
            holding.store(true);
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return release; });
        });
    });
    while (!holding.load())
        std::this_thread::yield();

    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());
    constexpr std::uint64_t kCount = 3;
    for (std::uint64_t id = 0; id < kCount; ++id)
        client.sendSearch(data_->query(id), data_->dim, settings(), id);
    while (server.metrics().received < kCount)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    server.requestStop();
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    holder.join();

    std::uint64_t ok = 0;
    for (std::uint64_t i = 0; i < kCount; ++i) {
        const auto response = client.recvSearchResponse();
        if (response.status == serve::Status::Ok)
            ok++;
    }
    EXPECT_EQ(ok, kCount);

    server.waitStopped();
    EXPECT_FALSE(server.running());
    // The listen socket is gone: new connections must fail.
    serve::AnnClient late;
    EXPECT_THROW(late.connect("127.0.0.1", server.port()), FatalError);
}

TEST_F(ServeFixture, ShutdownRequestFrameDrainsServer)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());
    ASSERT_EQ(client.search(data_->query(0), data_->dim, settings(), 1)
                  .status,
              serve::Status::Ok);
    client.shutdownServer(); // waits for the ack
    server.waitStopped();
    EXPECT_FALSE(server.running());
}

TEST_F(ServeFixture, IdOffsetShiftsResultsIntoGlobalSpace)
{
    // A shard process serving rows [base, base+n) reports neighbour
    // ids offset by base so the router's merged top-k lives in the
    // global id space.
    serve::ServerConfig config = baseConfig();
    config.id_offset = 100'000;
    serve::AnnServer server(*engine_, config);
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    for (std::size_t q = 0; q < 5; ++q) {
        const auto response =
            client.search(data_->query(q), data_->dim, settings(), q);
        ASSERT_EQ(response.status, serve::Status::Ok);
        const SearchResult local =
            engine_->searchLive(data_->query(q), settings());
        ASSERT_EQ(response.results.size(), local.size());
        for (std::size_t i = 0; i < local.size(); ++i) {
            EXPECT_EQ(response.results[i].id, local[i].id + 100'000u);
            EXPECT_FLOAT_EQ(response.results[i].distance,
                            local[i].distance);
        }
    }
}

TEST_F(ServeFixture, MetricsEchoLearnedPolicyState)
{
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    serve::AnnClient client;
    client.connect("127.0.0.1", server.port());

    // Toggles without an active model echo as off: the policies only
    // engage when a model is loaded, and the echo must match what the
    // search path actually does.
    learn::setActiveModel(nullptr);
    learn::setActiveModelPath("");
    learn::setLearnedEntryEnabled(true);
    learn::setEarlyStopEnabled(true);
    auto snapshot = client.metrics();
    EXPECT_EQ(snapshot.learned_entry, 0u);
    EXPECT_EQ(snapshot.learned_early_stop, 0u);
    EXPECT_TRUE(snapshot.learned_model.empty());

    // With a model active the toggles and its path round-trip through
    // the metrics wire frame.
    learn::setActiveModel(std::make_shared<learn::Model>());
    learn::setActiveModelPath("/models/hop-mlp.bin");
    snapshot = client.metrics();
    EXPECT_EQ(snapshot.learned_entry, 1u);
    EXPECT_EQ(snapshot.learned_early_stop, 1u);
    EXPECT_EQ(snapshot.learned_model, "/models/hop-mlp.bin");

    learn::setLearnedEntryEnabled(false);
    snapshot = client.metrics();
    EXPECT_EQ(snapshot.learned_entry, 0u);
    EXPECT_EQ(snapshot.learned_early_stop, 1u);

    learn::setEarlyStopEnabled(false);
    learn::setActiveModel(nullptr);
    learn::setActiveModelPath("");
}

TEST_F(ServeFixture, ConnectRetryWaitsOutStartupRace)
{
    // Immediate success: an established listener costs no retries.
    serve::AnnServer server(*engine_, baseConfig());
    server.start();
    {
        serve::AnnClient client;
        serve::ConnectRetry retry;
        retry.max_wait_ms = 1000;
        std::uint64_t retries = 77;
        client.connect("127.0.0.1", server.port(), retry, &retries);
        EXPECT_TRUE(client.connected());
        EXPECT_EQ(retries, 0u);
    }

    // Reserve a port nothing listens on, then connect with a small
    // budget: the dial must fail with FatalError after >= 1 refused
    // attempt (the retry counter survives the throw).
    std::uint16_t idle_port = 0;
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        socklen_t len = sizeof(addr);
        ASSERT_EQ(::getsockname(
                      fd, reinterpret_cast<sockaddr *>(&addr), &len),
                  0);
        idle_port = ntohs(addr.sin_port);
        ::close(fd); // bound but never listening -> ECONNREFUSED
    }
    {
        serve::AnnClient client;
        serve::ConnectRetry retry;
        retry.max_wait_ms = 50;
        std::uint64_t retries = 0;
        EXPECT_THROW(client.connect("127.0.0.1", idle_port, retry,
                                    &retries),
                     FatalError);
        EXPECT_GE(retries, 1u);
    }

    // Startup race: the listener appears ~100 ms after the client
    // starts dialing; the retry loop must absorb the gap.
    serve::ServerConfig late_config = baseConfig();
    late_config.port = idle_port;
    serve::AnnServer late_server(*engine_, late_config);
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        late_server.start();
    });
    serve::AnnClient client;
    serve::ConnectRetry retry;
    retry.max_wait_ms = 5000;
    std::uint64_t retries = 0;
    client.connect("127.0.0.1", idle_port, retry, &retries);
    starter.join();
    EXPECT_TRUE(client.connected());
    EXPECT_GE(retries, 1u);
    const auto response =
        client.search(data_->query(0), data_->dim, settings(), 1);
    EXPECT_EQ(response.status, serve::Status::Ok);
}

// ---------------------------------------- mutation / search races

TEST_F(ServeFixture, ConcurrentSearchesRaceStreamingMutations)
{
    // Fresh engine: liveAdd/liveMarkDeleted change its contents.
    MilvusLikeEngine engine(MilvusIndexKind::Hnsw);
    engine.prepare(*data_, cacheDir_->path());
    serve::EngineGate gate(engine);

    constexpr std::size_t kSearchers = 4;
    constexpr std::size_t kSearches = 150;
    constexpr std::size_t kMutations = 60;
    const std::size_t base_rows = data_->rows;

    std::atomic<bool> failed{false};
    std::vector<std::thread> searchers;
    searchers.reserve(kSearchers);
    for (std::size_t t = 0; t < kSearchers; ++t)
        searchers.emplace_back([&, t] {
            for (std::size_t i = 0; i < kSearches; ++i) {
                const std::size_t q =
                    (t * kSearches + i) % data_->num_queries;
                const SearchResult result =
                    gate.search(data_->query(q), settings());
                if (result.size() != settings().k)
                    failed.store(true);
                for (const Neighbor &n : result)
                    if (n.id >= base_rows + kMutations)
                        failed.store(true);
            }
        });

    std::thread mutator([&] {
        for (std::size_t i = 0; i < kMutations; ++i) {
            // Insert a copy of an existing vector, then tombstone an
            // old one — FreshDiskANN's streaming pattern in miniature.
            const float *vec =
                data_->base.data() + (i % data_->rows) * data_->dim;
            const VectorId added = gate.mutate(
                [&](engine::VectorDbEngine &) {
                    return engine.liveAdd(vec);
                });
            if (added < base_rows)
                failed.store(true);
            if (i % 2 == 0)
                gate.mutate([&](engine::VectorDbEngine &) {
                    engine.liveMarkDeleted(
                        static_cast<VectorId>(i));
                });
        }
    });

    for (std::thread &t : searchers)
        t.join();
    mutator.join();
    EXPECT_FALSE(failed.load());

    // Deleted ids must no longer surface once mutations settled.
    for (std::size_t q = 0; q < 10; ++q) {
        const SearchResult result =
            gate.search(data_->query(q), settings());
        for (const Neighbor &n : result)
            EXPECT_FALSE(n.id < kMutations && n.id % 2 == 0)
                << "tombstoned id " << n.id << " returned";
    }
}

TEST_F(ServeFixture, ConcurrentSearchesShareNodeCacheUnderMutations)
{
    // DiskANN segments on the file backend share one sector cache per
    // segment across all searcher threads; a mutator interleaves
    // FreshDiskANN-style delta inserts and tombstones behind the
    // gate's exclusive lock. The TSan build of this test is the
    // cache's concurrency contract.
    const storage::IoOptions saved = storage::defaultIoOptions();
    storage::IoOptions io = saved;
    io.kind = storage::IoBackendKind::File;
    const testutil::TempDir nodecache_dir("serve_test_nodecache");
    io.spill_dir = nodecache_dir.path();
    io.node_cache.capacity_bytes = 4u << 20;
    io.node_cache.warm_nodes = 32;
    storage::setDefaultIoOptions(io);

    MilvusLikeEngine engine(MilvusIndexKind::DiskAnn);
    engine.prepare(*data_, io.spill_dir);
    storage::setDefaultIoOptions(saved);
    serve::EngineGate gate(engine);

    constexpr std::size_t kSearchers = 4;
    constexpr std::size_t kSearches = 100;
    constexpr std::size_t kMutations = 40;
    const std::size_t base_rows = data_->rows;

    std::atomic<bool> failed{false};
    std::vector<std::thread> searchers;
    searchers.reserve(kSearchers);
    for (std::size_t t = 0; t < kSearchers; ++t)
        searchers.emplace_back([&, t] {
            for (std::size_t i = 0; i < kSearches; ++i) {
                const std::size_t q =
                    (t * kSearches + i) % data_->num_queries;
                const SearchResult result =
                    gate.search(data_->query(q), settings());
                if (result.size() != settings().k)
                    failed.store(true);
            }
        });

    std::thread mutator([&] {
        for (std::size_t i = 0; i < kMutations; ++i) {
            const float *vec =
                data_->base.data() + (i % data_->rows) * data_->dim;
            const VectorId added = gate.mutate(
                [&](engine::VectorDbEngine &) {
                    return engine.liveAdd(vec);
                });
            if (added < base_rows)
                failed.store(true);
            if (i % 2 == 0)
                gate.mutate([&](engine::VectorDbEngine &) {
                    engine.liveMarkDeleted(
                        static_cast<VectorId>(i));
                });
        }
    });

    for (std::thread &t : searchers)
        t.join();
    mutator.join();
    EXPECT_FALSE(failed.load());

    // Every searcher ran against file-backed segments, so the shared
    // caches must have seen traffic — and repeated queries must hit.
    const storage::NodeCacheStats stats = engine.nodeCacheStats();
    EXPECT_GT(stats.lookups, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);

}

TEST_F(ServeFixture, ServerSearchesDuringLiveMutations)
{
    MilvusLikeEngine engine(MilvusIndexKind::Hnsw);
    engine.prepare(*data_, cacheDir_->path());
    serve::AnnServer server(engine, baseConfig());
    server.start();

    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < 2; ++t)
        clients.emplace_back([&, t] {
            serve::AnnClient client;
            client.connect("127.0.0.1", server.port());
            for (std::uint64_t id = 0; id < 60; ++id) {
                const auto response = client.search(
                    data_->query((t * 60 + id) % data_->num_queries),
                    data_->dim, settings(), id);
                if (response.status != serve::Status::Ok)
                    failed.store(true);
            }
        });

    for (std::size_t i = 0; i < 25; ++i) {
        const float *vec =
            data_->base.data() + (i % data_->rows) * data_->dim;
        server.gate().mutate([&](engine::VectorDbEngine &) {
            return engine.liveAdd(vec);
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(server.metrics().protocol_errors, 0u);
}

} // namespace
} // namespace ann
