/**
 * @file
 * Tests for the pluggable real-I/O layer (ann_io): backend selection,
 * sector-run coalescing, the spill sink, and the byte-identity
 * contract — every backend must serve exactly the bytes of the image
 * it was built from, in any batch shape.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "storage/io_backend.hh"
#include "test_util.hh"

namespace ann::storage {
namespace {

/** Shared spill directory, outside the checkout, removed at exit. */
const std::string &
testSpillDir()
{
    static const testutil::TempDir dir("io_backend_test_spill");
    return dir.path();
}

/** Deterministic pseudo-random image of @p sectors sectors. */
std::vector<std::uint8_t>
testImage(std::size_t sectors, std::uint64_t seed)
{
    std::vector<std::uint8_t> image(sectors * kIoSectorBytes);
    Rng rng(seed);
    for (auto &byte : image)
        byte = static_cast<std::uint8_t>(rng.next() & 0xff);
    return image;
}

/** Build a backend of @p kind serving @p image via an IoSink. */
std::unique_ptr<IoBackend>
buildBackend(IoBackendKind kind, const std::vector<std::uint8_t> &image,
             unsigned queue_depth = 8)
{
    IoOptions options;
    options.kind = kind;
    options.queue_depth = queue_depth;
    options.spill_dir = testSpillDir();
    auto sink = makeIoSink(options, image.size());
    // Append in uneven chunks to exercise the sink's buffering.
    std::size_t offset = 0;
    std::size_t step = 1000;
    while (offset < image.size()) {
        const std::size_t bytes =
            std::min(step, image.size() - offset);
        sink->append(image.data() + offset, bytes);
        offset += bytes;
        step = step * 2 + 1;
    }
    return sink->finish();
}

/** Read back every sector one batch of mixed-size runs at a time and
 *  compare against @p image. */
void
expectServesImage(IoBackend &backend,
                  const std::vector<std::uint8_t> &image)
{
    ASSERT_EQ(backend.sizeBytes(), image.size());
    const std::uint64_t sectors = image.size() / kIoSectorBytes;

    // Batch of single-sector reads in reverse order.
    {
        AlignedBuffer buf;
        std::uint8_t *out = buf.ensure(image.size());
        std::memset(out, 0, image.size());
        std::vector<IoRequest> requests;
        for (std::uint64_t s = sectors; s-- > 0;)
            requests.push_back({s, 1, out + s * kIoSectorBytes});
        backend.readBatch(requests.data(), requests.size());
        EXPECT_EQ(std::memcmp(out, image.data(), image.size()), 0);
    }

    // One multi-sector run covering the whole file.
    {
        AlignedBuffer buf;
        std::uint8_t *dst = buf.ensure(image.size());
        const IoRequest req{0, static_cast<std::uint32_t>(sectors),
                            dst};
        backend.readBatch(&req, 1);
        EXPECT_EQ(std::memcmp(dst, image.data(), image.size()), 0);
    }

    // Mixed runs: [0,2) [3,4) [5,8) ... (skip every third sector).
    {
        std::vector<std::uint64_t> wanted;
        for (std::uint64_t s = 0; s < sectors; ++s)
            if (s % 3 != 2)
                wanted.push_back(s);
        const auto runs = coalesceSectors(wanted);
        AlignedBuffer buf;
        std::uint8_t *dst =
            buf.ensure(wanted.size() * kIoSectorBytes);
        std::vector<IoRequest> requests;
        std::size_t offset = 0;
        for (const IoRun &run : runs) {
            requests.push_back({run.sector, run.count, dst + offset});
            offset += run.count * kIoSectorBytes;
        }
        backend.readBatch(requests.data(), requests.size());
        offset = 0;
        for (const std::uint64_t s : wanted) {
            EXPECT_EQ(std::memcmp(dst + offset,
                                  image.data() + s * kIoSectorBytes,
                                  kIoSectorBytes),
                      0)
                << "sector " << s;
            offset += kIoSectorBytes;
        }
    }
}

// ------------------------------------------------------------- naming

TEST(IoBackendKindTest, NamesRoundTrip)
{
    for (const auto kind :
         {IoBackendKind::Memory, IoBackendKind::File,
          IoBackendKind::Uring}) {
        IoBackendKind parsed{};
        ASSERT_TRUE(
            ioBackendKindFromName(ioBackendKindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    IoBackendKind parsed{};
    EXPECT_FALSE(ioBackendKindFromName("nvme-of", &parsed));
    EXPECT_FALSE(ioBackendKindFromName("", &parsed));
}

TEST(IoBackendKindTest, OptionsFromEnv)
{
    ::setenv("ANN_IO_BACKEND", "file", 1);
    ::setenv("ANN_IO_QUEUE_DEPTH", "7", 1);
    ::setenv("ANN_IO_DIRECT", "0", 1);
    const IoOptions options = IoOptions::fromEnv();
    EXPECT_EQ(options.kind, IoBackendKind::File);
    EXPECT_EQ(options.queue_depth, 7u);
    EXPECT_FALSE(options.direct_io);
    ::unsetenv("ANN_IO_BACKEND");
    ::unsetenv("ANN_IO_QUEUE_DEPTH");
    ::unsetenv("ANN_IO_DIRECT");
}

// --------------------------------------------------------- coalescing

TEST(CoalesceSectorsTest, MergesContiguousRuns)
{
    EXPECT_TRUE(coalesceSectors({}).empty());

    const auto single = coalesceSectors({42});
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].sector, 42u);
    EXPECT_EQ(single[0].count, 1u);

    const auto runs = coalesceSectors({1, 2, 3, 7, 9, 10});
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].sector, 1u);
    EXPECT_EQ(runs[0].count, 3u);
    EXPECT_EQ(runs[1].sector, 7u);
    EXPECT_EQ(runs[1].count, 1u);
    EXPECT_EQ(runs[2].sector, 9u);
    EXPECT_EQ(runs[2].count, 2u);
}

// ------------------------------------------------------ aligned buffer

TEST(AlignedBufferTest, AlignedAndGrowable)
{
    AlignedBuffer buf;
    std::uint8_t *small = buf.ensure(100);
    ASSERT_NE(small, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small) % 4096, 0u);
    std::uint8_t *large = buf.ensure(1 << 20);
    ASSERT_NE(large, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(large) % 4096, 0u);
}

// ----------------------------------------------------------- backends

TEST(IoBackendTest, MemoryBackendIsZeroCopy)
{
    auto image = testImage(8, 1);
    const std::vector<std::uint8_t> reference = image;
    auto backend = makeMemoryBackend(std::move(image));
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), IoBackendKind::Memory);
    ASSERT_NE(backend->data(), nullptr);
    EXPECT_EQ(std::memcmp(backend->data(), reference.data(),
                          reference.size()),
              0);
    expectServesImage(*backend, reference);
}

TEST(IoBackendTest, FileBackendServesExactBytes)
{
    const auto image = testImage(37, 2);
    auto backend = buildBackend(IoBackendKind::File, image);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), IoBackendKind::File);
    EXPECT_EQ(backend->data(), nullptr);
    expectServesImage(*backend, image);
}

TEST(IoBackendTest, FileBackendSerialQueueDepth)
{
    const auto image = testImage(16, 3);
    auto backend =
        buildBackend(IoBackendKind::File, image, /*queue_depth=*/1);
    ASSERT_NE(backend, nullptr);
    expectServesImage(*backend, image);
}

TEST(IoBackendTest, UringBackendServesExactBytesOrFallsBack)
{
    const auto image = testImage(37, 4);
    auto backend = buildBackend(IoBackendKind::Uring, image);
    ASSERT_NE(backend, nullptr);
    if (uringSupported())
        EXPECT_EQ(backend->kind(), IoBackendKind::Uring);
    else
        EXPECT_EQ(backend->kind(), IoBackendKind::File);
    expectServesImage(*backend, image);
}

TEST(IoBackendTest, UringSmallQueueDepthStillCompletes)
{
    if (!uringSupported())
        GTEST_SKIP() << "io_uring unavailable in this environment";
    const auto image = testImage(64, 5);
    auto backend =
        buildBackend(IoBackendKind::Uring, image, /*queue_depth=*/2);
    ASSERT_NE(backend, nullptr);
    // 64 single-sector requests through a depth-2 window.
    expectServesImage(*backend, image);
}

TEST(IoBackendTest, SinkPadsPartialTrailingSector)
{
    // 2.5 sectors of payload: finish() must pad to 3 sectors.
    std::vector<std::uint8_t> payload(kIoSectorBytes * 5 / 2, 0xAB);
    IoOptions options;
    options.kind = IoBackendKind::File;
    options.spill_dir = testSpillDir();
    auto sink = makeIoSink(options, payload.size());
    sink->append(payload.data(), payload.size());
    auto backend = sink->finish();
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->sizeBytes(), 3 * kIoSectorBytes);

    AlignedBuffer buf;
    std::uint8_t *dst = buf.ensure(3 * kIoSectorBytes);
    const IoRequest req{0, 3, dst};
    backend->readBatch(&req, 1);
    EXPECT_EQ(std::memcmp(dst, payload.data(), payload.size()), 0);
    for (std::size_t i = payload.size(); i < 3 * kIoSectorBytes; ++i)
        ASSERT_EQ(dst[i], 0) << "pad byte " << i;
}

TEST(IoBackendTest, ConcurrentReadersSeeConsistentBytes)
{
    const auto image = testImage(32, 6);
    auto backend = buildBackend(IoBackendKind::Uring, image);
    ASSERT_NE(backend, nullptr);

    std::vector<std::thread> readers;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&backend, &image, &mismatches, t]() {
            AlignedBuffer buf;
            for (int round = 0; round < 20; ++round) {
                const std::uint64_t sector =
                    static_cast<std::uint64_t>((t * 7 + round) %
                                               32);
                std::uint8_t *dst = buf.ensure(kIoSectorBytes);
                const IoRequest req{sector, 1, dst};
                backend->readBatch(&req, 1);
                if (std::memcmp(dst,
                                image.data() +
                                    sector * kIoSectorBytes,
                                kIoSectorBytes) != 0)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &reader : readers)
        reader.join();
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace ann::storage
