/**
 * @file
 * Unit tests for src/common: errors, RNG, serialization, stats, tables.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/args.hh"
#include "common/env.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace ann {
namespace {

TEST(ErrorTest, CheckThrowsFatalWithContext)
{
    try {
        ANN_CHECK(false, "value was ", 42);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("value was 42"), std::string::npos);
        EXPECT_NE(what.find("common_test.cc"), std::string::npos);
    }
}

TEST(ErrorTest, AssertThrowsInternal)
{
    EXPECT_THROW(ANN_ASSERT(1 == 2, "broken"), InternalError);
}

TEST(ErrorTest, PassingChecksDoNotThrow)
{
    EXPECT_NO_THROW(ANN_CHECK(true, "fine"));
    EXPECT_NO_THROW(ANN_ASSERT(true, "fine"));
}

TEST(RngTest, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, GaussianHasReasonableMoments)
{
    Rng rng(11);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkIsIndependentOfParentUse)
{
    Rng parent(5);
    Rng child1 = parent.fork(3);
    parent.next();
    parent.next();
    Rng child2 = parent.fork(3);
    // Forks depend only on (seed, stream id), not on parent state.
    EXPECT_EQ(child1.next(), child2.next());
}

TEST(RngTest, ForksWithDifferentStreamsDiffer)
{
    Rng parent(5);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(SerializeTest, RoundTripsPodsStringsVectors)
{
    const std::string path = "serialize_test.bin";
    {
        BinaryWriter writer(path, "TEST", 3);
        writer.writePod<std::uint32_t>(0xdeadbeef);
        writer.writePod<double>(2.5);
        writer.writeString("hello world");
        writer.writeVector<float>({1.0f, 2.0f, 3.0f});
        writer.writeVector<std::uint64_t>({});
        writer.close();
    }
    {
        BinaryReader reader(path, "TEST", 3);
        EXPECT_EQ(reader.readPod<std::uint32_t>(), 0xdeadbeefu);
        EXPECT_EQ(reader.readPod<double>(), 2.5);
        EXPECT_EQ(reader.readString(), "hello world");
        const auto floats = reader.readVector<float>();
        ASSERT_EQ(floats.size(), 3u);
        EXPECT_EQ(floats[2], 3.0f);
        EXPECT_TRUE(reader.readVector<std::uint64_t>().empty());
    }
    std::remove(path.c_str());
}

TEST(SerializeTest, RejectsWrongMagicAndVersion)
{
    const std::string path = "serialize_magic_test.bin";
    {
        BinaryWriter writer(path, "GOOD", 1);
        writer.writePod<int>(1);
        writer.close();
    }
    EXPECT_THROW(BinaryReader(path, "EVIL", 1), FatalError);
    EXPECT_THROW(BinaryReader(path, "GOOD", 2), FatalError);
    EXPECT_NO_THROW(BinaryReader(path, "GOOD", 1));
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows)
{
    EXPECT_THROW(BinaryReader("/nonexistent/nowhere.bin", "X", 1),
                 FatalError);
}

TEST(SerializeTest, ShortReadThrows)
{
    const std::string path = "serialize_short_test.bin";
    {
        BinaryWriter writer(path, "SH", 1);
        writer.writePod<std::uint8_t>(1);
        writer.close();
    }
    BinaryReader reader(path, "SH", 1);
    EXPECT_EQ(reader.readPod<std::uint8_t>(), 1);
    EXPECT_THROW(reader.readPod<std::uint64_t>(), FatalError);
    std::remove(path.c_str());
}

TEST(StatsTest, MeanAndStddev)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.138, 0.01);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> v{10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
    EXPECT_DOUBLE_EQ(percentile(v, 99), 49.6);
}

TEST(StatsTest, PercentileHandlesUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({50, 10, 30, 20, 40}, 50), 30.0);
}

TEST(StatsTest, PercentileRejectsBadP)
{
    EXPECT_THROW(percentile({1.0}, -1), FatalError);
    EXPECT_THROW(percentile({1.0}, 101), FatalError);
}

TEST(StatsTest, OnlineStatsTracksExtremes)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(3.0);
    s.add(-1.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(StatsTest, HistogramBucketsAndOverflow)
{
    BucketHistogram hist({4096, 8192, 65536});
    hist.add(4096);        // bucket 0 (inclusive upper bound)
    hist.add(4097);        // bucket 1
    hist.add(100);         // bucket 0
    hist.add(1 << 20);     // overflow
    EXPECT_EQ(hist.totalCount(), 4u);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 0u);
    EXPECT_EQ(hist.bucketCount(3), 1u);
    EXPECT_DOUBLE_EQ(hist.fraction(0), 0.5);
}

TEST(StatsTest, HistogramRejectsUnsortedBounds)
{
    EXPECT_THROW(BucketHistogram({10, 5}), FatalError);
    EXPECT_THROW(BucketHistogram({}), FatalError);
}

TEST(TableTest, PrintsAlignedRows)
{
    TextTable table("title");
    table.setHeader({"name", "qps"});
    table.addRow({"milvus", "123.4"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("title"), std::string::npos);
    EXPECT_NE(text.find("milvus"), std::string::npos);
    EXPECT_NE(text.find("qps"), std::string::npos);
}

TEST(TableTest, RejectsArityMismatch)
{
    TextTable table;
    table.setHeader({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
}

TEST(TableTest, WritesCsvWithQuoting)
{
    TextTable table;
    table.setHeader({"k", "v"});
    table.addRow({"x,y", "plain"});
    const std::string path = "table_test_out.csv";
    table.writeCsv(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    std::getline(in, line);
    EXPECT_EQ(line, "\"x,y\",plain");
    std::remove(path.c_str());
}

TEST(TableTest, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatBytes(4096.0), "4.00 KiB");
    EXPECT_EQ(formatBytes(1.5 * 1024 * 1024 * 1024), "1.50 GiB");
}

TEST(EnvTest, FallbacksApply)
{
    EXPECT_EQ(envString("ANN_SURELY_UNSET_VAR", "dflt"), "dflt");
    EXPECT_EQ(envInt("ANN_SURELY_UNSET_VAR", 42), 42);
}

TEST(ArgsTest, ParsesOptionsFlagsAndPositionals)
{
    ArgParser args({"alpha", "beta"}, {"verbose"});
    const char *argv[] = {"prog", "--alpha", "3", "--beta=x",
                          "--verbose", "file.bin"};
    args.parse(6, argv);
    EXPECT_EQ(args.getInt("alpha", 0), 3);
    EXPECT_EQ(args.get("beta", ""), "x");
    EXPECT_TRUE(args.flag("verbose"));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "file.bin");
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_FALSE(args.has("missing"));
}

TEST(ArgsTest, RejectsUnknownAndMalformed)
{
    {
        ArgParser args({"alpha"}, {});
        const char *argv[] = {"prog", "--bogus", "1"};
        EXPECT_THROW(args.parse(3, argv), FatalError);
    }
    {
        ArgParser args({"alpha"}, {});
        const char *argv[] = {"prog", "--alpha"};
        EXPECT_THROW(args.parse(2, argv), FatalError);
    }
    {
        ArgParser args({"alpha"}, {});
        const char *argv[] = {"prog", "--alpha", "notanint"};
        args.parse(3, argv);
        EXPECT_THROW(args.getInt("alpha", 0), FatalError);
    }
    {
        ArgParser args({}, {"verbose"});
        const char *argv[] = {"prog", "--verbose=1"};
        EXPECT_THROW(args.parse(2, argv), FatalError);
    }
}

TEST(LatencyHistogramTest, BucketsPartitionTheRange)
{
    // Every bucket's range must start right after the previous one.
    std::uint64_t expected_low = 0;
    for (std::size_t i = 0; i < LatencyHistogram::numBuckets(); ++i) {
        EXPECT_EQ(LatencyHistogram::bucketLow(i), expected_low)
            << "bucket " << i;
        EXPECT_GE(LatencyHistogram::bucketHigh(i),
                  LatencyHistogram::bucketLow(i));
        expected_low = LatencyHistogram::bucketHigh(i) + 1;
        if (expected_low == 0)
            break; // wrapped: covered the full uint64 range
    }
    // Spot-check that values map into the bucket that contains them.
    for (const std::uint64_t v :
         {0ULL, 1ULL, 31ULL, 32ULL, 33ULL, 1000ULL, 123456789ULL,
          (1ULL << 40) + 12345ULL, ~0ULL}) {
        const auto idx = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(idx, LatencyHistogram::numBuckets());
        EXPECT_GE(v, LatencyHistogram::bucketLow(idx));
        EXPECT_LE(v, LatencyHistogram::bucketHigh(idx));
    }
}

TEST(LatencyHistogramTest, PercentilesWithinRelativeError)
{
    LatencyHistogram hist;
    for (std::uint64_t v = 1; v <= 100'000; ++v)
        hist.add(v);
    EXPECT_EQ(hist.count(), 100'000u);
    EXPECT_EQ(hist.minValue(), 1u);
    EXPECT_EQ(hist.maxValue(), 100'000u);
    EXPECT_NEAR(hist.mean(), 50'000.5, 1e-6);
    const double tol = 1.0 / (1 << LatencyHistogram::kSubBits);
    for (const double p : {50.0, 90.0, 99.0, 99.9}) {
        const double exact = p / 100.0 * 100'000.0;
        EXPECT_NEAR(hist.percentile(p), exact, exact * tol)
            << "p" << p;
    }
    EXPECT_EQ(hist.percentile(0.0), 1.0);
    EXPECT_EQ(hist.percentile(100.0), 100'000.0);
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogram)
{
    LatencyHistogram parts[4];
    LatencyHistogram whole;
    Rng rng(99);
    for (int i = 0; i < 40'000; ++i) {
        const auto v = rng.nextBelow(10'000'000);
        parts[i % 4].add(v);
        whole.add(v);
    }
    LatencyHistogram merged;
    for (const auto &part : parts)
        merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.minValue(), whole.minValue());
    EXPECT_EQ(merged.maxValue(), whole.maxValue());
    EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
    for (const double p : {1.0, 50.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(merged.percentile(p), whole.percentile(p));
}

TEST(LatencyHistogramTest, EmptyAndClear)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.percentile(99.0), 0.0);
    EXPECT_EQ(hist.mean(), 0.0);
    hist.add(42);
    hist.clear();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.maxValue(), 0u);
}

TEST(LatencyHistogramTest, MergeWithEmptyIsIdentity)
{
    // The router's rolling hedge-delay estimate merges the previous
    // epoch into the current one; at startup either side may be empty
    // and the merge must be an exact identity, not a perturbation.
    LatencyHistogram filled;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        filled.add(v * 7);
    const double p99_before = filled.percentile(99.0);

    LatencyHistogram empty;
    filled.merge(empty);
    EXPECT_EQ(filled.count(), 1000u);
    EXPECT_DOUBLE_EQ(filled.percentile(99.0), p99_before);

    empty.merge(filled);
    EXPECT_EQ(empty.count(), 1000u);
    EXPECT_EQ(empty.minValue(), filled.minValue());
    EXPECT_EQ(empty.maxValue(), filled.maxValue());
    EXPECT_DOUBLE_EQ(empty.percentile(99.0), p99_before);
}

TEST(LatencyHistogramTest, MergedTailDominatedByslowSource)
{
    // Hedging scenario: one epoch of fast replies (~100 us) merged
    // with a straggler epoch (~40 ms). The merged tail must surface
    // the stragglers while the median stays near the fast mode —
    // exactly what makes a P99-derived hedge delay meaningful.
    LatencyHistogram fast;
    for (int i = 0; i < 990; ++i)
        fast.add(100 + static_cast<std::uint64_t>(i) % 7);
    LatencyHistogram slow;
    for (int i = 0; i < 10; ++i)
        slow.add(40'000 + static_cast<std::uint64_t>(i));

    LatencyHistogram merged;
    merged.merge(fast);
    merged.merge(slow);
    EXPECT_EQ(merged.count(), 1000u);
    EXPECT_LT(merged.percentile(50.0), 200.0);
    EXPECT_GT(merged.percentile(99.5), 30'000.0);
    // Quantiles are monotone in p on the merged histogram.
    double prev = 0.0;
    for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
        const double q = merged.percentile(p);
        EXPECT_GE(q, prev) << "p" << p;
        prev = q;
    }
    // Merge order is immaterial (element-wise bucket addition).
    LatencyHistogram reversed;
    reversed.merge(slow);
    reversed.merge(fast);
    for (const double p : {50.0, 99.0, 99.9})
        EXPECT_DOUBLE_EQ(reversed.percentile(p),
                         merged.percentile(p));
}

TEST(EnvTest, ParsesIntegers)
{
    ::setenv("ANN_TEST_INT_VAR", "17", 1);
    EXPECT_EQ(envInt("ANN_TEST_INT_VAR", 0), 17);
    ::setenv("ANN_TEST_INT_VAR", "junk", 1);
    EXPECT_EQ(envInt("ANN_TEST_INT_VAR", 5), 5);
    ::unsetenv("ANN_TEST_INT_VAR");
}

} // namespace
} // namespace ann
