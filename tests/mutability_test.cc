/**
 * @file
 * Tests for streaming mutation support (paper SS VIII): inserts,
 * tombstone deletes, and DiskANN's delta store + consolidation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hh"
#include "common/serialize.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "index/hnsw_index.hh"
#include "index/ivf_index.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::makeClusteredData;
using testutil::TestData;

/** Exact top-1 over live rows of @p rows x @p dim data. */
VectorId
exactNearest(const std::vector<float> &data, std::size_t dim,
             const float *query)
{
    MatrixView view{data.data(), data.size() / dim, dim};
    return bruteForceSearch(view, query, Metric::L2, 1)[0].id;
}

class MutabilityFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        data_ = makeClusteredData(1200, 20, 24, 808);
    }

    TestData data_;
};

TEST_F(MutabilityFixture, HnswAddIsImmediatelySearchable)
{
    HnswIndex index;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 60;
    index.build(data_.baseView(), build);

    // Insert each query vector itself; it must become its own NN.
    HnswSearchParams search;
    search.ef_search = 40;
    search.k = 1;
    for (std::size_t q = 0; q < data_.num_queries; ++q) {
        const VectorId id = index.add(data_.queryView().row(q));
        EXPECT_EQ(id, 1200u + q);
        const auto result =
            index.search(data_.queryView().row(q), search);
        ASSERT_FALSE(result.empty());
        EXPECT_EQ(result[0].id, id);
        EXPECT_EQ(result[0].distance, 0.0f);
    }
    EXPECT_EQ(index.size(), 1200u + data_.num_queries);
}

TEST_F(MutabilityFixture, HnswDeletedNodesNeverSurface)
{
    HnswIndex index;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 60;
    index.build(data_.baseView(), build);

    HnswSearchParams search;
    search.ef_search = 50;
    search.k = 5;
    const float *query = data_.queryView().row(0);
    const auto before = index.search(query, search);
    const VectorId victim = before[0].id;
    index.markDeleted(victim);
    EXPECT_TRUE(index.isDeleted(victim));
    EXPECT_EQ(index.deletedCount(), 1u);

    const auto after = index.search(query, search);
    for (const Neighbor &n : after)
        EXPECT_NE(n.id, victim);
    // The old runner-up moves to the front.
    EXPECT_EQ(after[0].id, before[1].id);
}

TEST_F(MutabilityFixture, HnswDeleteIsIdempotent)
{
    HnswIndex index;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 40;
    index.build(data_.baseView(), build);
    index.markDeleted(3);
    index.markDeleted(3);
    EXPECT_EQ(index.deletedCount(), 1u);
    EXPECT_THROW(index.markDeleted(999999), FatalError);
}

TEST_F(MutabilityFixture, HnswTombstonesSurviveSaveLoad)
{
    HnswIndex index;
    HnswBuildParams build;
    build.m = 8;
    build.ef_construction = 40;
    index.build(data_.baseView(), build);
    index.markDeleted(7);
    const std::string path = "hnsw_mut_test.bin";
    {
        BinaryWriter writer(path, "HMT", 1);
        index.save(writer);
        writer.close();
    }
    HnswIndex loaded;
    {
        BinaryReader reader(path, "HMT", 1);
        loaded.load(reader);
    }
    EXPECT_TRUE(loaded.isDeleted(7));
    EXPECT_EQ(loaded.deletedCount(), 1u);
    // And the loaded index still accepts inserts.
    const VectorId id = loaded.add(data_.queryView().row(0));
    EXPECT_EQ(id, 1200u);
    std::remove(path.c_str());
}

TEST_F(MutabilityFixture, IvfAddAndDelete)
{
    IvfIndex index;
    IvfBuildParams build;
    build.nlist = 24;
    index.build(data_.baseView(), build);

    IvfSearchParams search;
    search.nprobe = 24; // exhaustive -> exact over live rows
    search.k = 1;
    const float *query = data_.queryView().row(1);
    const VectorId id = index.add(query);
    EXPECT_EQ(id, 1200u);
    auto result = index.search(query, search);
    EXPECT_EQ(result[0].id, id);

    index.markDeleted(id);
    result = index.search(query, search);
    EXPECT_NE(result[0].id, id);
    EXPECT_EQ(result[0].id, exactNearest(data_.base, 24, query));
}

TEST_F(MutabilityFixture, IvfDeleteFiltersWithinLists)
{
    IvfIndex index;
    IvfBuildParams build;
    build.nlist = 16;
    index.build(data_.baseView(), build);
    IvfSearchParams search;
    search.nprobe = 16;
    search.k = 3;
    const float *query = data_.queryView().row(2);
    const auto before = index.search(query, search);
    for (const Neighbor &n : before)
        index.markDeleted(n.id);
    const auto after = index.search(query, search);
    for (const Neighbor &n : after)
        for (const Neighbor &b : before)
            EXPECT_NE(n.id, b.id);
}

class DiskAnnMutFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        data_ = makeClusteredData(1200, 20, 24, 909);
        DiskAnnBuildParams params;
        params.graph.max_degree = 24;
        params.graph.build_list = 48;
        params.pq.m = 12;
        params.pq.ksub = 64;
        index_.build(data_.baseView(), params);
        search_.search_list = 20;
        search_.beam_width = 4;
        search_.k = 5;
    }

    TestData data_;
    DiskAnnIndex index_;
    DiskAnnSearchParams search_;
};

TEST_F(DiskAnnMutFixture, DeltaInsertsAreSearchableWithoutIo)
{
    const float *query = data_.queryView().row(0);
    const VectorId id = index_.addDelta(query);
    EXPECT_EQ(id, 1200u);
    EXPECT_EQ(index_.deltaSize(), 1u);

    SearchTraceRecorder recorder;
    const auto result = index_.search(query, search_, &recorder);
    EXPECT_EQ(result[0].id, id);
    EXPECT_EQ(result[0].distance, 0.0f);
    // Delta rows are memory resident: same sector count as a pure
    // base search (the delta scan shows up as rows_scanned).
    EXPECT_GT(recorder.totals().rows_scanned, 0u);
}

TEST_F(DiskAnnMutFixture, DeletesFilterBaseAndDelta)
{
    const float *query = data_.queryView().row(1);
    const auto before = index_.search(query, search_);
    index_.markDeleted(before[0].id);
    const auto after = index_.search(query, search_);
    for (const Neighbor &n : after)
        EXPECT_NE(n.id, before[0].id);

    const VectorId delta_id = index_.addDelta(query);
    index_.markDeleted(delta_id);
    const auto final_result = index_.search(query, search_);
    for (const Neighbor &n : final_result)
        EXPECT_NE(n.id, delta_id);
}

TEST_F(DiskAnnMutFixture, ConsolidateMergesDeltaAndDropsTombstones)
{
    // Insert all queries, delete a slice of base vectors.
    std::vector<VectorId> delta_ids;
    for (std::size_t q = 0; q < data_.num_queries; ++q)
        delta_ids.push_back(index_.addDelta(data_.queryView().row(q)));
    for (VectorId v = 0; v < 100; ++v)
        index_.markDeleted(v);

    std::vector<VectorId> remap;
    index_.consolidate(&remap);

    // New size: 1200 - 100 + 20; tombstones cleared; delta merged.
    EXPECT_EQ(index_.size(), 1200u - 100u + 20u);
    EXPECT_EQ(index_.deltaSize(), 0u);
    EXPECT_EQ(index_.deletedCount(), 0u);
    for (VectorId v = 0; v < 100; ++v)
        EXPECT_EQ(remap[v], kInvalidVector);

    // Merged queries are now on-disk graph nodes and still findable.
    for (std::size_t q = 0; q < data_.num_queries; q += 4) {
        const auto result =
            index_.search(data_.queryView().row(q), search_);
        EXPECT_EQ(result[0].id, remap[delta_ids[q]]);
        EXPECT_EQ(result[0].distance, 0.0f);
    }
}

TEST_F(DiskAnnMutFixture, ConsolidateGrowsDiskFile)
{
    const auto sectors_before = index_.numSectors();
    for (int i = 0; i < 300; ++i)
        index_.addDelta(data_.queryView().row(i % 20));
    index_.consolidate();
    EXPECT_GT(index_.numSectors(), sectors_before);
}

TEST_F(DiskAnnMutFixture, DeltaSurvivesSaveLoad)
{
    index_.addDelta(data_.queryView().row(3));
    index_.markDeleted(5);
    const std::string path = "diskann_mut_test.bin";
    {
        BinaryWriter writer(path, "DMT", 1);
        index_.save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(path, "DMT", 1);
        loaded.load(reader);
    }
    EXPECT_EQ(loaded.deltaSize(), 1u);
    EXPECT_TRUE(loaded.isDeleted(5));
    const auto result =
        loaded.search(data_.queryView().row(3), search_);
    EXPECT_EQ(result[0].distance, 0.0f);
    std::remove(path.c_str());
}

TEST_F(DiskAnnMutFixture, RecallHoldsThroughChurn)
{
    // Delete 10% of the base, insert replacements, consolidate, and
    // verify recall against recomputed ground truth.
    std::vector<float> live = data_.base;
    for (VectorId v = 0; v < 120; ++v)
        index_.markDeleted(v);
    live.erase(live.begin(), live.begin() + 120 * 24);
    index_.consolidate();

    MatrixView view{live.data(), live.size() / 24, 24};
    double recall = 0.0;
    for (std::size_t q = 0; q < data_.num_queries; ++q) {
        const float *query = data_.queryView().row(q);
        const auto truth = bruteForceSearch(view, query, Metric::L2, 5);
        const auto approx = index_.search(query, search_);
        std::vector<VectorId> truth_ids;
        for (const Neighbor &n : truth)
            truth_ids.push_back(n.id);
        std::vector<VectorId> found_ids;
        for (const Neighbor &n : approx)
            found_ids.push_back(n.id);
        recall += recallAtK(truth_ids, found_ids, 5);
    }
    EXPECT_GT(recall / static_cast<double>(data_.num_queries), 0.85);
}

} // namespace
} // namespace ann
