/**
 * @file
 * Cross-module property tests (parameterized sweeps): monotonicity
 * and boundedness invariants that must hold for any configuration,
 * not just the calibrated one.
 */

#include <gtest/gtest.h>

#include "cluster/kmeans.hh"
#include "core/replay.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "sim/cpu_model.hh"
#include "sim/simulator.hh"
#include "storage/page_cache.hh"
#include "storage/ssd_model.hh"
#include "test_util.hh"

namespace ann {
namespace {

using sim::Simulator;
using sim::Task;
using storage::SsdConfig;
using storage::SsdModel;

/** Closed-loop 4 KiB random read IOPS at queue depth @p qd. */
double
iopsAtQueueDepth(std::size_t qd)
{
    Simulator simulator;
    SsdModel ssd(simulator, SsdConfig::samsung990Pro());
    const SimTime second = 300'000'000; // 0.3 s is enough
    auto worker = [](Simulator &s, SsdModel &d, SimTime until) -> Task {
        while (s.now() < until)
            co_await d.read(0, 4096, 0);
    };
    for (std::size_t i = 0; i < qd; ++i)
        worker(simulator, ssd, second);
    simulator.runUntil(second);
    return static_cast<double>(ssd.completedReads()) /
           (static_cast<double>(second) / 1e9);
}

class SsdQueueDepthSweep
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(SsdQueueDepthSweep, ThroughputMonotoneAndBounded)
{
    const std::size_t qd = GetParam();
    const double iops = iopsAtQueueDepth(qd);
    const double iops_half = iopsAtQueueDepth(std::max<std::size_t>(
        1, qd / 2));
    // Monotone (within jitter tolerance) and never above the channel
    // bound: channels / min flash time.
    EXPECT_GE(iops * 1.02, iops_half) << "qd=" << qd;
    const SsdConfig config = SsdConfig::samsung990Pro();
    const double cap =
        static_cast<double>(config.channels) /
        (static_cast<double>(config.flash_read_ns) *
         (1.0 - config.jitter_frac) / 1e9);
    EXPECT_LE(iops, cap * 1.02);
}

INSTANTIATE_TEST_SUITE_P(QueueDepths, SsdQueueDepthSweep,
                         ::testing::Values(1, 2, 8, 32, 128, 512));

class CacheCapacitySweep
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(CacheCapacitySweep, HitRateReflectsCoverage)
{
    const std::size_t capacity = GetParam();
    storage::PageCache cache(capacity);
    const std::size_t working_set = 64;
    // Cyclic scan over the working set, several rounds.
    for (int round = 0; round < 8; ++round) {
        for (std::uint64_t p = 0; p < working_set; ++p) {
            if (!cache.lookup(p))
                cache.insert(p);
        }
    }
    const double hit_rate =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
    if (capacity >= working_set) {
        // Only the first round misses.
        EXPECT_GT(hit_rate, 0.8);
    } else {
        // Strict LRU + cyclic scan larger than the cache: every
        // access misses (the classic LRU pathological case).
        EXPECT_LT(hit_rate, 0.05);
    }
    EXPECT_LE(cache.residentPages(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(4, 16, 48, 64, 128));

class KMeansKSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(KMeansKSweep, InertiaDecreasesWithK)
{
    const std::size_t k = GetParam();
    const auto data = testutil::makeClusteredData(600, 1, 12, 99);
    auto inertia = [&](std::size_t clusters) {
        KMeansParams params;
        params.k = clusters;
        params.seed = 5;
        const auto model = kmeansFit(data.baseView(), params);
        const auto assign = assignToCentroids(model, data.baseView());
        double acc = 0.0;
        for (std::size_t r = 0; r < data.rows; ++r)
            acc += l2DistanceSq(data.baseView().row(r),
                                model.centroid(assign[r]), data.dim);
        return acc;
    };
    // More clusters never fit worse (allowing 2% seeding slack).
    EXPECT_LE(inertia(k), inertia(std::max<std::size_t>(1, k / 2)) *
                              1.02);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

class DiskAnnSearchListSweep
    : public ::testing::TestWithParam<std::size_t>
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new testutil::TestData(
            testutil::makeClusteredData(1500, 25, 24, 4242));
        index_ = new DiskAnnIndex();
        DiskAnnBuildParams params;
        params.graph.max_degree = 32;
        params.graph.build_list = 64;
        params.pq.m = 12;
        params.pq.ksub = 64;
        index_->build(data_->baseView(), params);
        truth_ = new std::vector<std::vector<VectorId>>(
            testutil::groundTruth(*data_, 10));
    }
    static void
    TearDownTestSuite()
    {
        delete index_;
        delete truth_;
        delete data_;
        index_ = nullptr;
        truth_ = nullptr;
        data_ = nullptr;
    }

    static testutil::TestData *data_;
    static DiskAnnIndex *index_;
    static std::vector<std::vector<VectorId>> *truth_;
};

testutil::TestData *DiskAnnSearchListSweep::data_ = nullptr;
DiskAnnIndex *DiskAnnSearchListSweep::index_ = nullptr;
std::vector<std::vector<VectorId>> *DiskAnnSearchListSweep::truth_ =
    nullptr;

TEST_P(DiskAnnSearchListSweep, RecallAndIoGrowTogether)
{
    const std::size_t search_list = GetParam();
    auto run = [&](std::size_t sl) {
        DiskAnnSearchParams params;
        params.search_list = sl;
        params.beam_width = 4;
        params.k = 10;
        double recall = 0.0;
        std::uint64_t sectors = 0;
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            SearchTraceRecorder recorder;
            const auto result = index_->search(
                data_->queryView().row(q), params, &recorder);
            recall += recallAtK((*truth_)[q], result, 10);
            sectors += recorder.totalSectors();
        }
        return std::pair<double, std::uint64_t>(
            recall / static_cast<double>(data_->num_queries), sectors);
    };
    const auto [recall_lo, sectors_lo] = run(10);
    const auto [recall_hi, sectors_hi] = run(search_list);
    EXPECT_GE(recall_hi + 0.02, recall_lo) << "L=" << search_list;
    if (search_list >= 20)
        EXPECT_GT(sectors_hi, sectors_lo);
}

INSTANTIATE_TEST_SUITE_P(SearchLists, DiskAnnSearchListSweep,
                         ::testing::Values(10, 20, 40, 80, 160));

class ReplayThreadSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ReplayThreadSweep, ClosedLoopThroughputIsMonotone)
{
    const std::size_t threads = GetParam();
    engine::QueryTrace trace;
    trace.rtt_ns = 200'000;
    trace.parallel_chains.push_back({{400'000, {}}});
    std::vector<engine::QueryTrace> traces{trace};

    engine::EngineProfile profile;
    profile.rtt_ns = 0;
    profile.serial_cpu_ns = 0;

    auto qps_at = [&](std::size_t n) {
        core::ReplayConfig config;
        config.client_threads = n;
        config.duration_ns = 300'000'000;
        config.num_cores = 8;
        config.cpu_jitter = 0.0;
        return core::replayWorkload(traces, profile, config).qps;
    };
    EXPECT_GE(qps_at(threads) * 1.02,
              qps_at(std::max<std::size_t>(1, threads / 2)));
}

INSTANTIATE_TEST_SUITE_P(Threads, ReplayThreadSweep,
                         ::testing::Values(2, 4, 16, 64, 256));

} // namespace
} // namespace ann
