/**
 * @file
 * Tests for the Vamana graph builder and the DiskANN index: graph
 * invariants, disk layout, beam-search behaviour, recall, the I/O
 * trace instrumentation, and serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/error.hh"
#include "common/serialize.hh"
#include "distance/recall.hh"
#include "index/diskann_index.hh"
#include "index/vamana.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::groundTruth;
using testutil::makeClusteredData;
using testutil::TestData;

class VamanaFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(1500, 30, 24, 999));
        VamanaBuildParams params;
        params.max_degree = 24;
        params.build_list = 48;
        graph_ = new VamanaGraph(buildVamana(data_->baseView(), params));
    }
    static void
    TearDownTestSuite()
    {
        delete data_;
        delete graph_;
        data_ = nullptr;
        graph_ = nullptr;
    }

    static TestData *data_;
    static VamanaGraph *graph_;
};

TestData *VamanaFixture::data_ = nullptr;
VamanaGraph *VamanaFixture::graph_ = nullptr;

TEST_F(VamanaFixture, DegreeBoundHolds)
{
    for (const auto &adj : graph_->adjacency)
        EXPECT_LE(adj.size(), graph_->max_degree);
}

TEST_F(VamanaFixture, NoSelfLoopsOrDuplicateEdges)
{
    for (std::size_t v = 0; v < graph_->adjacency.size(); ++v) {
        std::set<VectorId> uniq;
        for (VectorId nb : graph_->adjacency[v]) {
            EXPECT_NE(nb, v);
            EXPECT_LT(nb, graph_->adjacency.size());
            uniq.insert(nb);
        }
        EXPECT_EQ(uniq.size(), graph_->adjacency[v].size());
    }
}

TEST_F(VamanaFixture, MedoidIsValid)
{
    EXPECT_LT(graph_->medoid, graph_->adjacency.size());
    EXPECT_FALSE(graph_->adjacency[graph_->medoid].empty());
}

TEST_F(VamanaFixture, GreedySearchFindsNearNeighbors)
{
    const auto truth = groundTruth(*data_, 10);
    double recall = 0.0;
    for (std::size_t q = 0; q < data_->num_queries; ++q) {
        const auto visited = vamanaGreedySearch(
            data_->baseView(), *graph_, data_->queryView().row(q), 48);
        std::vector<VectorId> found;
        for (std::size_t i = 0; i < std::min<std::size_t>(10,
                                                          visited.size());
             ++i)
            found.push_back(visited[i].id);
        recall += recallAtK(truth[q], found, 10);
    }
    recall /= static_cast<double>(data_->num_queries);
    EXPECT_GT(recall, 0.85);
}

class DiskAnnFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(1500, 30, 32, 321));
        truth_ = new std::vector<std::vector<VectorId>>(
            groundTruth(*data_, 10));
        index_ = new DiskAnnIndex();
        DiskAnnBuildParams params;
        params.graph.max_degree = 24;
        params.graph.build_list = 48;
        // One sub-quantizer per two dims, as Milvus-DiskANN defaults
        // to a byte per dimension-or-two of PQ budget.
        params.pq.m = 16;
        params.pq.ksub = 256;
        index_->build(data_->baseView(), params);
    }
    static void
    TearDownTestSuite()
    {
        delete data_;
        delete truth_;
        delete index_;
        data_ = nullptr;
        truth_ = nullptr;
        index_ = nullptr;
    }

    double
    meanRecall(const DiskAnnSearchParams &params) const
    {
        double acc = 0.0;
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto result =
                index_->search(data_->queryView().row(q), params);
            acc += recallAtK((*truth_)[q], result, 10);
        }
        return acc / static_cast<double>(data_->num_queries);
    }

    static TestData *data_;
    static std::vector<std::vector<VectorId>> *truth_;
    static DiskAnnIndex *index_;
};

TestData *DiskAnnFixture::data_ = nullptr;
std::vector<std::vector<VectorId>> *DiskAnnFixture::truth_ = nullptr;
DiskAnnIndex *DiskAnnFixture::index_ = nullptr;

TEST_F(DiskAnnFixture, LayoutPacksNodesIntoSectors)
{
    // dim=32: node = 128 + 4 + 24*4 = 228 bytes -> 17 nodes/sector.
    EXPECT_EQ(index_->nodeBytes(), 32 * 4 + 4 + 24 * 4);
    EXPECT_EQ(index_->nodesPerSector(), 4096 / index_->nodeBytes());
    EXPECT_EQ(index_->sectorsPerNode(), 1u);
    EXPECT_EQ(index_->sectorOfNode(0), 1u); // sector 0 is the header
    const auto nps = index_->nodesPerSector();
    EXPECT_EQ(index_->sectorOfNode(static_cast<VectorId>(nps)), 2u);
    EXPECT_EQ(index_->diskBytes(), index_->numSectors() * kSectorBytes);
}

TEST_F(DiskAnnFixture, MemoryFootprintIsCompressed)
{
    // The in-memory part (PQ) must be much smaller than raw vectors.
    const std::size_t raw = 1500 * 32 * sizeof(float);
    EXPECT_LT(index_->memoryBytes(), raw / 2);
    EXPECT_GT(index_->diskBytes(), raw); // disk holds vectors + graph
}

TEST_F(DiskAnnFixture, ReachesTargetRecall)
{
    DiskAnnSearchParams params;
    params.search_list = 20;
    params.beam_width = 4;
    params.k = 10;
    EXPECT_GT(meanRecall(params), 0.9);
}

TEST_F(DiskAnnFixture, RecallGrowsWithSearchList)
{
    DiskAnnSearchParams params;
    params.beam_width = 4;
    params.k = 10;
    params.search_list = 10;
    const double low = meanRecall(params);
    params.search_list = 100;
    const double high = meanRecall(params);
    EXPECT_GE(high + 1e-9, low);
    EXPECT_GT(high, 0.93);
}

TEST_F(DiskAnnFixture, IoGrowsWithSearchList)
{
    auto sectors_for = [&](std::size_t search_list) {
        DiskAnnSearchParams params;
        params.search_list = search_list;
        params.beam_width = 4;
        params.k = 10;
        std::uint64_t total = 0;
        for (std::size_t q = 0; q < 10; ++q) {
            SearchTraceRecorder recorder;
            index_->search(data_->queryView().row(q), params, &recorder);
            total += recorder.totalSectors();
        }
        return total;
    };
    // The paper's O-20/O-21: larger search_list -> more I/O.
    EXPECT_GT(sectors_for(100), 2 * sectors_for(10));
}

TEST_F(DiskAnnFixture, BeamBatchRespectsBeamWidth)
{
    DiskAnnSearchParams params;
    params.search_list = 50;
    params.beam_width = 2;
    params.k = 10;
    SearchTraceRecorder recorder;
    index_->search(data_->queryView().row(0), params, &recorder);
    for (const SearchStep &step : recorder.steps()) {
        std::uint64_t batch_sectors = 0;
        for (const SectorRead &read : step.reads)
            batch_sectors += read.count;
        // A beam of W nodes touches at most W sectors here
        // (sectors_per_node == 1).
        EXPECT_LE(batch_sectors, 2u);
    }
}

TEST_F(DiskAnnFixture, TraceStepsAlternateCpuAndIo)
{
    DiskAnnSearchParams params;
    params.search_list = 20;
    params.beam_width = 4;
    SearchTraceRecorder recorder;
    index_->search(data_->queryView().row(1), params, &recorder);
    const auto &steps = recorder.steps();
    ASSERT_GT(steps.size(), 1u);
    // Every step except possibly the last carries reads; hop count in
    // the trace matches the number of I/O batches.
    std::size_t io_steps = 0;
    for (const SearchStep &step : steps)
        io_steps += step.reads.empty() ? 0 : 1;
    EXPECT_EQ(io_steps, recorder.totals().hops);
}

TEST_F(DiskAnnFixture, SectorReadsAreWithinFile)
{
    DiskAnnSearchParams params;
    params.search_list = 30;
    params.beam_width = 4;
    SearchTraceRecorder recorder;
    index_->search(data_->queryView().row(2), params, &recorder);
    for (const SearchStep &step : recorder.steps()) {
        for (const SectorRead &read : step.reads) {
            EXPECT_GE(read.sector, 1u); // never the header
            EXPECT_LT(read.sector + read.count, index_->numSectors() + 1);
        }
    }
}

TEST_F(DiskAnnFixture, SaveLoadPreservesResults)
{
    const std::string path = "diskann_test.bin";
    {
        BinaryWriter writer(path, "DAT", 1);
        index_->save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(path, "DAT", 1);
        loaded.load(reader);
    }
    DiskAnnSearchParams params;
    params.search_list = 20;
    for (std::size_t q = 0; q < 10; ++q) {
        const float *query = data_->queryView().row(q);
        EXPECT_EQ(index_->search(query, params),
                  loaded.search(query, params));
    }
    std::remove(path.c_str());
}

TEST_F(DiskAnnFixture, RejectsBadSearchParams)
{
    DiskAnnSearchParams params;
    params.search_list = 5;
    params.k = 10; // search_list < k
    EXPECT_THROW(index_->search(data_->queryView().row(0), params),
                 FatalError);
    params.search_list = 20;
    params.beam_width = 0;
    EXPECT_THROW(index_->search(data_->queryView().row(0), params),
                 FatalError);
}

/** Nodes larger than a sector must span multiple sectors. */
TEST(DiskAnnLayoutTest, WideVectorsSpanSectors)
{
    // dim=1536 mimics OpenAI embeddings: node > 4 KiB.
    TestData data = makeClusteredData(60, 4, 1536, 31);
    DiskAnnIndex index;
    DiskAnnBuildParams params;
    params.graph.max_degree = 16;
    params.graph.build_list = 24;
    params.pq.m = 96;
    params.pq.ksub = 16;
    index.build(data.baseView(), params);

    EXPECT_GT(index.nodeBytes(), kSectorBytes);
    EXPECT_EQ(index.nodesPerSector(), 0u);
    EXPECT_EQ(index.sectorsPerNode(), 2u);
    EXPECT_EQ(index.sectorOfNode(3), 1u + 3u * 2u);

    // Searches must read both sectors of each expanded node.
    DiskAnnSearchParams search;
    search.search_list = 10;
    search.beam_width = 1;
    search.k = 5;
    SearchTraceRecorder recorder;
    index.search(data.queryView().row(0), search, &recorder);
    for (const SearchStep &step : recorder.steps()) {
        if (step.reads.empty())
            continue;
        std::uint64_t batch = 0;
        for (const SectorRead &read : step.reads)
            batch += read.count;
        EXPECT_EQ(batch, 2u);
    }
}

TEST(DiskAnnSmallTest, TinyDatasetStillWorks)
{
    TestData data = makeClusteredData(40, 5, 16, 7);
    DiskAnnIndex index;
    DiskAnnBuildParams params;
    params.graph.max_degree = 8;
    params.graph.build_list = 16;
    params.pq.m = 4;
    params.pq.ksub = 16;
    index.build(data.baseView(), params);

    DiskAnnSearchParams search;
    search.search_list = 20;
    search.k = 5;
    const auto truth = groundTruth(data, 5);
    double recall = 0.0;
    for (std::size_t q = 0; q < data.num_queries; ++q)
        recall += recallAtK(truth[q],
                            index.search(data.queryView().row(q), search),
                            5);
    EXPECT_GT(recall / 5.0, 0.9);
}

} // namespace
} // namespace ann
