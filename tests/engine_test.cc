/**
 * @file
 * Tests for the vector-database engine layer: segmentation, trace
 * shapes, I/O patterns, quantization effects, and the cost model.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "distance/recall.hh"
#include "engine/cost_model.hh"
#include "engine/lance_like.hh"
#include "engine/milvus_like.hh"
#include "engine/qdrant_like.hh"
#include "engine/weaviate_like.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

using engine::MilvusIndexKind;
using engine::MilvusLikeEngine;
using engine::SearchSettings;
using workload::Dataset;
using workload::GeneratorSpec;

/** Shared small dataset + scratch cache dir for all engine tests. */
class EngineFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cacheDir_ = new std::string("./engine_test_cache");
        std::filesystem::create_directories(*cacheDir_);
        GeneratorSpec spec;
        spec.name = "engine-test";
        spec.rows = 13000; // > 2 Milvus segments at scale 1
        spec.dim = 16;
        spec.num_queries = 40;
        spec.clusters = 12;
        spec.gt_k = 10;
        spec.seed = 7;
        data_ = new Dataset(generateDataset(spec));
    }
    static void
    TearDownTestSuite()
    {
        std::filesystem::remove_all(*cacheDir_);
        delete data_;
        delete cacheDir_;
        data_ = nullptr;
        cacheDir_ = nullptr;
    }

    double
    meanRecall(engine::VectorDbEngine &eng,
               const SearchSettings &settings) const
    {
        double acc = 0.0;
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const auto out = eng.search(data_->query(q), settings);
            acc += recallAtK(data_->ground_truth[q], out.results,
                             settings.k);
        }
        return acc / static_cast<double>(data_->num_queries);
    }

    static Dataset *data_;
    static std::string *cacheDir_;
};

Dataset *EngineFixture::data_ = nullptr;
std::string *EngineFixture::cacheDir_ = nullptr;

TEST_F(EngineFixture, MilvusSegmentsDataset)
{
    MilvusLikeEngine eng(MilvusIndexKind::Ivf);
    eng.prepare(*data_, *cacheDir_);
    // 13000 rows / 6000-row segments -> 3 segments.
    EXPECT_EQ(eng.numSegments(), 3u);
}

TEST_F(EngineFixture, MilvusIvfSearchesAcrossSegments)
{
    MilvusLikeEngine eng(MilvusIndexKind::Ivf);
    eng.prepare(*data_, *cacheDir_);
    SearchSettings settings;
    settings.nprobe = 20;
    const auto out = eng.search(data_->query(0), settings);
    ASSERT_EQ(out.results.size(), 10u);
    // Ids must be global (any segment), unique, within range.
    for (const Neighbor &n : out.results)
        EXPECT_LT(n.id, data_->rows);
    EXPECT_EQ(out.trace.parallel_chains.size(), 3u);
    EXPECT_GT(meanRecall(eng, settings), 0.85);
}

TEST_F(EngineFixture, MilvusHnswTraceIsMemoryOnly)
{
    MilvusLikeEngine eng(MilvusIndexKind::Hnsw);
    eng.prepare(*data_, *cacheDir_);
    SearchSettings settings;
    settings.ef_search = 50;
    const auto out = eng.search(data_->query(1), settings);
    EXPECT_EQ(out.trace.totalReadSectors(), 0u);
    EXPECT_GT(out.trace.totalCpuNs(), 0u);
    EXPECT_GT(meanRecall(eng, settings), 0.9);
}

TEST_F(EngineFixture, MilvusDiskAnnIssues4KiBReads)
{
    MilvusLikeEngine eng(MilvusIndexKind::DiskAnn);
    eng.prepare(*data_, *cacheDir_);
    SearchSettings settings;
    settings.search_list = 20;
    settings.beam_width = 4;
    const auto out = eng.search(data_->query(2), settings);
    EXPECT_GT(out.trace.totalReadSectors(), 0u);
    // Direct-I/O path: every request is a single sector (O-15).
    for (const auto &chain : out.trace.parallel_chains)
        for (const auto &step : chain)
            for (const SectorRead &read : step.reads)
                EXPECT_EQ(read.count, 1u);
    EXPECT_GT(meanRecall(eng, settings), 0.85);
}

TEST_F(EngineFixture, MilvusDiskAnnSegmentsUseDisjointSectors)
{
    MilvusLikeEngine eng(MilvusIndexKind::DiskAnn);
    eng.prepare(*data_, *cacheDir_);
    SearchSettings settings;
    settings.search_list = 20;
    const auto out = eng.search(data_->query(3), settings);
    ASSERT_EQ(out.trace.parallel_chains.size(), 3u);

    // Chains must touch non-overlapping sector ranges.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    for (const auto &chain : out.trace.parallel_chains) {
        std::uint64_t lo = ~0ULL, hi = 0;
        for (const auto &step : chain) {
            for (const SectorRead &read : step.reads) {
                lo = std::min(lo, read.sector);
                hi = std::max(hi, read.sector);
            }
        }
        ranges.push_back({lo, hi});
    }
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i)
        EXPECT_GT(ranges[i].first, ranges[i - 1].second);
    EXPECT_LT(ranges.back().second, eng.diskSectors());
}

TEST_F(EngineFixture, MilvusDiskAnnMemoryIsCompressed)
{
    MilvusLikeEngine eng(MilvusIndexKind::DiskAnn);
    eng.prepare(*data_, *cacheDir_);
    // PQ in memory must be far smaller than the raw vectors.
    EXPECT_LT(eng.memoryBytes(), data_->baseBytes() / 2);
    EXPECT_GT(eng.diskSectors(), 0u);
}

TEST_F(EngineFixture, MilvusIoGrowsWithSegments)
{
    // More data (more segments) -> proportionally more I/O per query
    // (the paper's O-14 mechanism).
    MilvusLikeEngine eng(MilvusIndexKind::DiskAnn);
    eng.prepare(*data_, *cacheDir_);
    SearchSettings settings;
    settings.search_list = 10;

    GeneratorSpec spec;
    spec.name = "engine-test-small";
    spec.rows = 4000; // 1 segment
    spec.dim = 16;
    spec.num_queries = 10;
    spec.clusters = 12;
    spec.gt_k = 10;
    spec.seed = 8;
    Dataset small = generateDataset(spec);
    MilvusLikeEngine small_eng(MilvusIndexKind::DiskAnn);
    small_eng.prepare(small, *cacheDir_);

    const auto big_out = eng.search(data_->query(0), settings);
    const auto small_out = small_eng.search(small.query(0), settings);
    EXPECT_GT(big_out.trace.totalReadSectors(),
              2 * small_out.trace.totalReadSectors());
}

TEST_F(EngineFixture, QdrantAndWeaviateShareTheSameGraph)
{
    engine::QdrantLikeEngine qdrant;
    engine::WeaviateLikeEngine weaviate;
    qdrant.prepare(*data_, *cacheDir_);
    weaviate.prepare(*data_, *cacheDir_); // loads the cached build
    SearchSettings settings;
    settings.ef_search = 40;
    for (std::size_t q = 0; q < 10; ++q) {
        const auto a = qdrant.search(data_->query(q), settings);
        const auto b = weaviate.search(data_->query(q), settings);
        EXPECT_EQ(a.results, b.results);
    }
    // Same algorithmic work, different modelled cost.
    const auto qa = qdrant.search(data_->query(0), settings);
    const auto wa = weaviate.search(data_->query(0), settings);
    EXPECT_GT(wa.trace.totalCpuNs(), qa.trace.totalCpuNs());
}

TEST_F(EngineFixture, WeaviateHasHighestFixedOverhead)
{
    engine::WeaviateLikeEngine weaviate;
    engine::QdrantLikeEngine qdrant;
    MilvusLikeEngine milvus(MilvusIndexKind::Hnsw);
    EXPECT_GT(weaviate.profile().proxy_cpu_ns,
              qdrant.profile().proxy_cpu_ns);
    EXPECT_GT(qdrant.profile().proxy_cpu_ns,
              milvus.profile().proxy_cpu_ns);
}

TEST_F(EngineFixture, LanceHnswSqUsesQuantizationAndHasOomLimit)
{
    engine::LanceHnswSqEngine lance;
    lance.prepare(*data_, *cacheDir_);
    EXPECT_EQ(lance.profile().max_client_threads, 128u);
    EXPECT_FALSE(lance.profile().storage_based);
    // SQ stores one byte per dimension instead of a 4-byte float, so
    // the SQ engine is smaller than the plain-HNSW engines (the graph
    // links are identical).
    engine::QdrantLikeEngine plain;
    plain.prepare(*data_, *cacheDir_);
    EXPECT_LT(lance.memoryBytes(),
              plain.memoryBytes() -
                  data_->baseBytes() * 3 / 4 + 4096);

    SearchSettings settings;
    settings.ef_search = 60;
    EXPECT_GT(meanRecall(lance, settings), 0.8);
}

TEST_F(EngineFixture, LanceIvfPqReadsProbedLists)
{
    engine::LanceIvfPqEngine lance;
    lance.prepare(*data_, *cacheDir_);
    EXPECT_TRUE(lance.profile().storage_based);
    EXPECT_FALSE(lance.profile().direct_io); // buffered (page cache)

    SearchSettings settings;
    settings.nprobe = 7;
    const auto out = lance.search(data_->query(0), settings);
    // One batch of reads covering the 7 probed lists.
    std::size_t read_runs = 0;
    for (const auto &chain : out.trace.parallel_chains)
        for (const auto &step : chain)
            read_runs += step.reads.size();
    EXPECT_EQ(read_runs, 7u);
    EXPECT_GT(lance.diskSectors(), 0u);
}

TEST_F(EngineFixture, PreparedEnginesReloadFromCache)
{
    MilvusLikeEngine first(MilvusIndexKind::Ivf);
    first.prepare(*data_, *cacheDir_);
    MilvusLikeEngine second(MilvusIndexKind::Ivf);
    second.prepare(*data_, *cacheDir_); // must hit the cache
    SearchSettings settings;
    settings.nprobe = 10;
    for (std::size_t q = 0; q < 5; ++q)
        EXPECT_EQ(first.search(data_->query(q), settings).results,
                  second.search(data_->query(q), settings).results);
}

TEST(CostModelTest, MonotoneInOps)
{
    engine::CostModel model;
    OpCounts few, many;
    few.full_distances = 10;
    many.full_distances = 1000;
    EXPECT_LT(model.cpuNs(few), model.cpuNs(many));
}

TEST(CostModelTest, DimMultiplierScalesKernelWork)
{
    engine::CostModel base, scaled;
    scaled.dim_multiplier = 6.0;
    OpCounts ops;
    ops.full_distances = 100;
    EXPECT_NEAR(static_cast<double>(scaled.cpuNs(ops)),
                6.0 * static_cast<double>(base.cpuNs(ops)),
                static_cast<double>(base.cpuNs(ops)) * 0.01 + 2);
}

TEST(CostModelTest, EngineScaleAppliesToEverything)
{
    engine::CostModel base, slow;
    slow.engine_scale = 2.0;
    OpCounts ops;
    ops.full_distances = 50;
    ops.heap_ops = 100;
    ops.hops = 10;
    EXPECT_NEAR(static_cast<double>(slow.cpuNs(ops)),
                2.0 * static_cast<double>(base.cpuNs(ops)), 2.0);
}

TEST(CostModelTest, PaperDimsResolve)
{
    EXPECT_EQ(engine::paperDimForDataset("cohere-1m"), 768u);
    EXPECT_EQ(engine::paperDimForDataset("openai-5m"), 1536u);
    EXPECT_EQ(engine::paperDimForDataset("custom"), 0u);
}

TEST(QueryTraceTest, Accounting)
{
    engine::QueryTrace trace;
    trace.serial_cpu_ns = 100;
    trace.prologue.push_back({50, {}});
    trace.parallel_chains.push_back(
        {{200, {{1, 1}, {5, 2}}}, {100, {}}});
    trace.parallel_chains.push_back({{300, {{9, 1}}}});
    trace.epilogue.push_back({25, {}});
    EXPECT_EQ(trace.totalCpuNs(), 775u);
    EXPECT_EQ(trace.totalReadSectors(), 4u);
    EXPECT_EQ(trace.totalReadBytes(), 4u * 4096u);
    EXPECT_EQ(trace.ioBatches(), 2u);
}

} // namespace
} // namespace ann
