/**
 * @file
 * Tests for the discrete-event simulator: event ordering, coroutine
 * tasks, delays, resources, join counters, and the CPU model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hh"
#include "sim/cpu_model.hh"
#include "sim/resource.hh"
#include "sim/simulator.hh"

namespace ann {
namespace {

using sim::CpuModel;
using sim::JoinCounter;
using sim::Resource;
using sim::Simulator;
using sim::Task;

TEST(EventQueueTest, FiresInTimeOrder)
{
    Simulator simulator;
    std::vector<int> order;
    simulator.schedule(30, [&]() { order.push_back(3); });
    simulator.schedule(10, [&]() { order.push_back(1); });
    simulator.schedule(20, [&]() { order.push_back(2); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(simulator.now(), 30u);
}

TEST(EventQueueTest, EqualTimesAreFifo)
{
    Simulator simulator;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        simulator.schedule(100, [&order, i]() { order.push_back(i); });
    simulator.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NestedSchedulingAdvancesClock)
{
    Simulator simulator;
    SimTime inner_fired_at = 0;
    simulator.schedule(10, [&]() {
        simulator.schedule(5, [&]() { inner_fired_at = simulator.now(); });
    });
    simulator.run();
    EXPECT_EQ(inner_fired_at, 15u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline)
{
    Simulator simulator;
    int fired = 0;
    simulator.schedule(10, [&]() { ++fired; });
    simulator.schedule(100, [&]() { ++fired; });
    simulator.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(simulator.now(), 50u);
    simulator.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CoroutineDelaySequence)
{
    Simulator simulator;
    std::vector<SimTime> times;
    auto proc = [](Simulator &s, std::vector<SimTime> &out) -> Task {
        out.push_back(s.now());
        co_await s.delay(100);
        out.push_back(s.now());
        co_await s.delay(50);
        out.push_back(s.now());
    };
    proc(simulator, times);
    simulator.run();
    EXPECT_EQ(times, (std::vector<SimTime>{0, 100, 150}));
}

TEST(SimulatorTest, ZeroDelayIsImmediate)
{
    Simulator simulator;
    bool done = false;
    auto proc = [](Simulator &s, bool &flag) -> Task {
        co_await s.delay(0);
        flag = true;
    };
    proc(simulator, done);
    // delay(0) short-circuits: done before the event loop runs.
    EXPECT_TRUE(done);
    simulator.run();
}

TEST(ResourceTest, CapacityLimitsConcurrency)
{
    Simulator simulator;
    Resource res(simulator, 2);
    std::size_t max_in_use = 0;
    auto proc = [](Simulator &s, Resource &r,
                   std::size_t &peak) -> Task {
        co_await r.acquire();
        peak = std::max(peak, r.inUse());
        co_await s.delay(100);
        r.release();
    };
    for (int i = 0; i < 6; ++i)
        proc(simulator, res, max_in_use);
    simulator.run();
    EXPECT_EQ(max_in_use, 2u);
    EXPECT_EQ(res.inUse(), 0u);
    // 6 jobs, capacity 2, 100 ns each -> 3 waves.
    EXPECT_EQ(simulator.now(), 300u);
}

TEST(ResourceTest, FifoGrantOrder)
{
    Simulator simulator;
    Resource res(simulator, 1);
    std::vector<int> grants;
    auto proc = [](Simulator &s, Resource &r, std::vector<int> &out,
                   int id) -> Task {
        co_await r.acquire();
        out.push_back(id);
        co_await s.delay(10);
        r.release();
    };
    for (int i = 0; i < 4; ++i)
        proc(simulator, res, grants, i);
    simulator.run();
    EXPECT_EQ(grants, (std::vector<int>{0, 1, 2, 3}));
}

TEST(JoinCounterTest, ResumesAfterAllArrive)
{
    Simulator simulator;
    SimTime joined_at = 0;
    auto parent = [](Simulator &s, SimTime &out) -> Task {
        JoinCounter join(3);
        auto child = [](Simulator &sm, JoinCounter &j,
                        SimTime d) -> Task {
            co_await sm.delay(d);
            j.arrive();
        };
        child(s, join, 30);
        child(s, join, 10);
        child(s, join, 20);
        co_await join.wait();
        out = s.now();
    };
    parent(simulator, joined_at);
    simulator.run();
    EXPECT_EQ(joined_at, 30u);
}

TEST(JoinCounterTest, ZeroCountIsReady)
{
    Simulator simulator;
    bool done = false;
    auto proc = [](Simulator &, bool &flag) -> Task {
        JoinCounter join(0);
        co_await join.wait();
        flag = true;
    };
    proc(simulator, done);
    EXPECT_TRUE(done);
}

TEST(CpuModelTest, SingleCoreSerializesJobs)
{
    Simulator simulator;
    CpuModel cpu(simulator, 1);
    std::vector<SimTime> completion;
    auto proc = [](Simulator &s, CpuModel &c,
                   std::vector<SimTime> &out) -> Task {
        co_await c.run(100);
        out.push_back(s.now());
    };
    for (int i = 0; i < 3; ++i)
        proc(simulator, cpu, completion);
    simulator.run();
    EXPECT_EQ(completion, (std::vector<SimTime>{100, 200, 300}));
    EXPECT_EQ(cpu.totalBusyNs(), 300u);
}

TEST(CpuModelTest, MultiCoreRunsInParallel)
{
    Simulator simulator;
    CpuModel cpu(simulator, 4);
    std::vector<SimTime> completion;
    auto proc = [](Simulator &s, CpuModel &c,
                   std::vector<SimTime> &out) -> Task {
        co_await c.run(100);
        out.push_back(s.now());
    };
    for (int i = 0; i < 4; ++i)
        proc(simulator, cpu, completion);
    simulator.run();
    EXPECT_EQ(completion,
              (std::vector<SimTime>{100, 100, 100, 100}));
}

TEST(CpuModelTest, UtilizationTimelineAccounting)
{
    Simulator simulator;
    CpuModel cpu(simulator, 2, 100); // 100 ns buckets
    auto proc = [](CpuModel &c) -> Task { co_await c.run(150); };
    proc(cpu); // one of two cores busy for 150 ns
    simulator.run();
    const auto timeline = cpu.utilizationTimeline(200);
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_DOUBLE_EQ(timeline[0], 0.5);  // 100/200 core-ns
    EXPECT_DOUBLE_EQ(timeline[1], 0.25); // 50/200 core-ns
    EXPECT_DOUBLE_EQ(cpu.meanUtilization(200), 0.375);
}

TEST(CpuModelTest, SaturationUnderLoad)
{
    Simulator simulator;
    CpuModel cpu(simulator, 2, 1000);
    auto worker = [](Simulator &s, CpuModel &c) -> Task {
        for (int i = 0; i < 10; ++i)
            co_await c.run(100);
        (void)s;
    };
    for (int i = 0; i < 8; ++i)
        worker(simulator, cpu);
    simulator.run();
    // 8 workers x 10 x 100 ns on 2 cores -> 4000 ns makespan.
    EXPECT_EQ(simulator.now(), 4000u);
    EXPECT_DOUBLE_EQ(cpu.meanUtilization(4000), 1.0);
}

TEST(SimDeterminismTest, IdenticalRunsProduceIdenticalTimelines)
{
    auto run_once = []() {
        Simulator simulator;
        CpuModel cpu(simulator, 3);
        Resource lock(simulator, 1);
        std::vector<SimTime> events;
        auto proc = [](Simulator &s, CpuModel &c, Resource &l,
                       std::vector<SimTime> &out, int id) -> Task {
            for (int i = 0; i < 5; ++i) {
                co_await c.run(70 + id * 13);
                co_await l.acquire();
                co_await s.delay(11);
                l.release();
                out.push_back(s.now());
            }
        };
        for (int id = 0; id < 6; ++id)
            proc(simulator, cpu, lock, events, id);
        simulator.run();
        return events;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace ann
