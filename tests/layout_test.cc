/**
 * @file
 * Tests for the pluggable on-disk layout (index/layout.hh): the
 * packed-BFS permutation itself, bit-identity of search results
 * across layouts and I/O backends, archive version compatibility
 * (id-order archives keep the seed's version-3 byte stream), and the
 * I/O saving page-aligned packing buys once a sector cache fronts the
 * real backends.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "index/diskann_index.hh"
#include "index/layout.hh"
#include "index/search_trace.hh"
#include "index/vamana.hh"
#include "storage/io_backend.hh"
#include "test_util.hh"

namespace ann {
namespace {

using testutil::makeClusteredData;
using testutil::TestData;

/** Shared spill directory, outside the checkout, removed at exit. */
const std::string &
testSpillDir()
{
    static const testutil::TempDir dir("layout_test_spill");
    return dir.path();
}

bool
isPermutation(const std::vector<std::uint32_t> &position)
{
    std::vector<std::uint32_t> sorted(position);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        if (sorted[i] != i)
            return false;
    return true;
}

/** 0->{1,2}, 1->{3}; nodes 4..9 unreachable. */
VamanaGraph
tinyGraph()
{
    VamanaGraph graph;
    graph.adjacency.assign(10, {});
    graph.adjacency[0] = {1, 2};
    graph.adjacency[1] = {3};
    graph.medoid = 0;
    graph.max_degree = 2;
    return graph;
}

TEST(PackedBfsOrderTest, ProducesPermutationForAnyPageSize)
{
    const VamanaGraph graph = tinyGraph();
    for (const std::size_t nodes_per_page : {0u, 1u, 3u, 4u, 17u}) {
        const auto position = packedBfsOrder(graph, nodes_per_page);
        ASSERT_EQ(position.size(), graph.adjacency.size());
        EXPECT_TRUE(isPermutation(position))
            << nodes_per_page << " nodes/page";
        // The medoid always leads: it seeds the BFS and the first
        // page alike, so warm-up reads start at the image's front.
        EXPECT_EQ(position[graph.medoid], 0u)
            << nodes_per_page << " nodes/page";
    }
}

TEST(PackedBfsOrderTest, SingleSlotPagesFallBackToBfsRank)
{
    const auto position = packedBfsOrder(tinyGraph(), 1);
    // BFS from 0 visits 0,1,2,3; the disconnected tail 4..9 follows
    // in id order.
    const std::vector<std::uint32_t> expected{0, 1, 2, 3,
                                              4, 5, 6, 7, 8, 9};
    EXPECT_EQ(position, expected);
}

TEST(PackedBfsOrderTest, FirstPageHoldsTheMedoidNeighbourhood)
{
    const auto position = packedBfsOrder(tinyGraph(), 3);
    // Page 0 (slots 0..2) is seeded by the medoid and filled by its
    // out-neighbourhood, so the entry hop's fetch serves hop two.
    EXPECT_LT(position[0], 3u);
    EXPECT_LT(position[1], 3u);
    EXPECT_LT(position[2], 3u);
}

/** Two components: 0->{9} (reachable), 2->{7}; medoid 0. */
VamanaGraph
twoComponentGraph()
{
    VamanaGraph graph;
    graph.adjacency.assign(10, {});
    graph.adjacency[0] = {9};
    graph.adjacency[2] = {7};
    graph.medoid = 0;
    graph.max_degree = 1;
    return graph;
}

TEST(PackedBfsOrderTest, DryFrontierTopsUpAcrossComponents)
{
    // BFS from the medoid reaches only {0, 9}; the rest of the graph
    // is disconnected and follows in id order. Every page must still
    // fill to its boundary by topping up from that order whenever the
    // local frontier runs dry mid-page.
    const auto position = packedBfsOrder(twoComponentGraph(), 3);
    EXPECT_TRUE(isPermutation(position));
    // Page 0: seed 0 pulls its only neighbour 9, dries out, and tops
    // up with node 1. Page 1: seed 2 jumps ahead to its neighbour 7,
    // dries out, and tops up with 3. Pages 2-3 are pure top-up.
    const std::vector<std::uint32_t> expected{0, 2, 3, 5, 6,
                                              7, 8, 4, 9, 1};
    EXPECT_EQ(position, expected);
}

TEST(PackedBfsOrderTest, OutOfRangeMedoidFallsBackToIdOrder)
{
    // Nothing is reachable when the medoid index is invalid: the
    // whole graph is "disconnected remainder" and must come out as
    // the identity permutation at one node per page.
    VamanaGraph graph;
    graph.adjacency.assign(6, {});
    graph.adjacency[1] = {5};
    graph.medoid = 42;
    const auto position = packedBfsOrder(graph, 1);
    const std::vector<std::uint32_t> expected{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(position, expected);
}

TEST(PackedBfsOrderTest, ManyComponentsStayPermutationsForAnyPageSize)
{
    // Dozens of 2-node components on a prime node count: the dry
    // frontier fires once per component and pages never divide the
    // graph evenly, whatever the page size.
    VamanaGraph graph;
    const std::size_t rows = 101;
    graph.adjacency.assign(rows, {});
    for (std::size_t v = 0; v + 1 < rows; v += 4)
        graph.adjacency[v] = {static_cast<VectorId>(v + 1)};
    graph.medoid = 0;
    graph.max_degree = 1;
    for (const std::size_t nodes_per_page : {2u, 3u, 7u, 64u}) {
        const auto position = packedBfsOrder(graph, nodes_per_page);
        EXPECT_TRUE(isPermutation(position))
            << nodes_per_page << " nodes/page";
        EXPECT_EQ(position[graph.medoid], 0u)
            << nodes_per_page << " nodes/page";
    }
}

TEST(PackedBfsOrderTest, EmptyGraphYieldsEmptyOrder)
{
    VamanaGraph graph;
    graph.medoid = 0;
    EXPECT_TRUE(packedBfsOrder(graph, 4).empty());
}

TEST(PackedBfsOrderTest, RealGraphPermutationIsValid)
{
    const TestData data = makeClusteredData(800, 4, 16, 2024);
    VamanaBuildParams params;
    params.max_degree = 16;
    params.build_list = 32;
    const VamanaGraph graph = buildVamana(data.baseView(), params);
    for (const std::size_t nodes_per_page : {1u, 5u, 17u}) {
        const auto position = packedBfsOrder(graph, nodes_per_page);
        EXPECT_TRUE(isPermutation(position))
            << nodes_per_page << " nodes/page";
        EXPECT_EQ(position[graph.medoid], 0u);
    }
}

/** One dataset, the same build under both layout policies. */
class LayoutFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(1200, 24, 32, 77));
        DiskAnnBuildParams params;
        params.graph.max_degree = 24;
        params.graph.build_list = 48;
        params.pq.m = 16;
        params.pq.ksub = 256;
        params.layout = LayoutPolicy::IdOrder;
        id_ = new DiskAnnIndex();
        id_->build(data_->baseView(), params);
        params.layout = LayoutPolicy::PackedBfs;
        packed_ = new DiskAnnIndex();
        packed_->build(data_->baseView(), params);
    }
    static void
    TearDownTestSuite()
    {
        delete data_;
        delete id_;
        delete packed_;
        data_ = nullptr;
        id_ = nullptr;
        packed_ = nullptr;
    }

    static void
    expectIdenticalResults(DiskAnnIndex &a, DiskAnnIndex &b,
                           const DiskAnnSearchParams &params,
                           const char *what)
    {
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            const float *query = data_->queryView().row(q);
            const auto lhs = a.search(query, params);
            const auto rhs = b.search(query, params);
            ASSERT_EQ(lhs.size(), rhs.size())
                << what << ", query " << q;
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                EXPECT_EQ(lhs[i].id, rhs[i].id)
                    << what << ", query " << q << ", rank " << i;
                EXPECT_EQ(lhs[i].distance, rhs[i].distance)
                    << what << ", query " << q << ", rank " << i;
            }
        }
    }

    static TestData *data_;
    static DiskAnnIndex *id_;
    static DiskAnnIndex *packed_;
};

TestData *LayoutFixture::data_ = nullptr;
DiskAnnIndex *LayoutFixture::id_ = nullptr;
DiskAnnIndex *LayoutFixture::packed_ = nullptr;

TEST_F(LayoutFixture, PackedRecordsAreReallyPermuted)
{
    ASSERT_EQ(packed_->layout(), LayoutPolicy::PackedBfs);
    ASSERT_EQ(id_->layout(), LayoutPolicy::IdOrder);
    // The permutation must move at least some records, and the
    // packed image grows by the permutation-table sectors only.
    bool moved = false;
    for (VectorId v = 0; v < data_->rows; ++v)
        moved = moved || packed_->nodePosition(v) != v;
    EXPECT_TRUE(moved);
    EXPECT_GT(packed_->numSectors(), id_->numSectors());
}

TEST_F(LayoutFixture, PackedSearchIsBitIdentical)
{
    // The permutation only relocates records; every candidate list,
    // distance, and tie-break must match the id-order index exactly.
    DiskAnnSearchParams params;
    params.k = 10;
    for (const std::size_t search_list : {10u, 20u, 50u}) {
        for (const std::size_t beam : {1u, 4u}) {
            params.search_list = search_list;
            params.beam_width = beam;
            expectIdenticalResults(*id_, *packed_, params,
                                   "packed vs id-order");
        }
    }
}

TEST_F(LayoutFixture, PackedSaveLoadRoundTripAcrossBackends)
{
    const std::string path = "layout_test_packed.bin";
    {
        BinaryWriter writer(path, "LAY", 1);
        packed_->save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(path, "LAY", 1);
        loaded.load(reader);
    }
    EXPECT_EQ(loaded.layout(), LayoutPolicy::PackedBfs);
    EXPECT_EQ(loaded.numSectors(), packed_->numSectors());

    DiskAnnSearchParams params;
    params.search_list = 24;
    params.beam_width = 4;
    params.k = 10;
    expectIdenticalResults(*packed_, loaded, params,
                           "loaded packed (memory)");

    storage::IoOptions file_mode;
    file_mode.kind = storage::IoBackendKind::File;
    file_mode.spill_dir = testSpillDir();
    loaded.setIoMode(file_mode);
    expectIdenticalResults(*packed_, loaded, params,
                           "loaded packed (file)");
    if (storage::uringSupported()) {
        storage::IoOptions uring_mode = file_mode;
        uring_mode.kind = storage::IoBackendKind::Uring;
        loaded.setIoMode(uring_mode);
        expectIdenticalResults(*packed_, loaded, params,
                               "loaded packed (uring)");
    }
    std::remove(path.c_str());
}

TEST_F(LayoutFixture, IdOrderArchivesKeepLoading)
{
    // Id-order saves still emit the seed's version-3 stream, so
    // pre-layout archives and fresh id-order ones are byte-for-byte
    // the same format; loading one must not grow a permutation.
    const std::string path = "layout_test_idorder.bin";
    {
        BinaryWriter writer(path, "LAY", 1);
        id_->save(writer);
        writer.close();
    }
    DiskAnnIndex loaded;
    {
        BinaryReader reader(path, "LAY", 1);
        loaded.load(reader);
    }
    EXPECT_EQ(loaded.layout(), LayoutPolicy::IdOrder);
    EXPECT_EQ(loaded.numSectors(), id_->numSectors());
    for (VectorId v = 0; v < 32; ++v)
        EXPECT_EQ(loaded.nodePosition(v), v);

    DiskAnnSearchParams params;
    params.search_list = 24;
    params.beam_width = 4;
    params.k = 10;
    expectIdenticalResults(*id_, loaded, params, "loaded id-order");
    std::remove(path.c_str());
}

TEST_F(LayoutFixture, PackedReadsFewerSectorsWithCache)
{
    // With a sector cache fronting the file backend, packing
    // hop-mates into shared pages turns whole-page admissions into
    // future hits: the packed index must reach the backend for fewer
    // sectors than id order on the same warmed query stream.
    storage::IoOptions mode;
    mode.kind = storage::IoBackendKind::File;
    mode.spill_dir = testSpillDir();
    mode.node_cache.capacity_bytes =
        static_cast<std::size_t>(id_->numSectors()) * kSectorBytes / 2;

    DiskAnnSearchParams params;
    params.search_list = 32;
    params.beam_width = 4;
    params.k = 10;

    auto measured_sectors = [&](DiskAnnIndex &index) {
        index.setIoMode(mode);
        // Warm pass, then a measured steady-state pass.
        for (std::size_t q = 0; q < data_->num_queries; ++q)
            index.search(data_->queryView().row(q), params);
        std::uint64_t total = 0;
        for (std::size_t q = 0; q < data_->num_queries; ++q) {
            SearchTraceRecorder recorder;
            index.search(data_->queryView().row(q), params,
                         &recorder);
            total += recorder.totalSectors();
        }
        storage::IoOptions memory_mode;
        index.setIoMode(memory_mode);
        return total;
    };

    const std::uint64_t id_sectors = measured_sectors(*id_);
    const std::uint64_t packed_sectors = measured_sectors(*packed_);
    EXPECT_LT(packed_sectors, id_sectors)
        << "packed layout should save backend reads under a cache";
}

} // namespace
} // namespace ann
