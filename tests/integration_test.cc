/**
 * @file
 * End-to-end integration: a miniature run of the paper's pipeline —
 * generate a workload, prepare engines, tune to a recall target,
 * replay at several concurrencies — asserting the study's headline
 * *shapes* hold (KF-1, KF-2, KF-3 directionality).
 *
 * Uses a reduced dataset so the whole file stays within seconds.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/env.hh"
#include "core/bench_runner.hh"
#include "core/tuner.hh"
#include "workload/registry.hh"
#include "engine/milvus_like.hh"
#include "engine/qdrant_like.hh"
#include "engine/weaviate_like.hh"
#include "storage/trace_analysis.hh"
#include "workload/generator.hh"
#include "test_util.hh"

namespace ann {
namespace {

using engine::MilvusIndexKind;
using engine::MilvusLikeEngine;
using engine::SearchSettings;

class PipelineFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::GeneratorSpec spec;
        spec.name = "integration";
        spec.rows = 9000; // 2 Milvus segments
        spec.dim = 24;
        spec.num_queries = 60;
        spec.clusters = 24;
        spec.spread = 0.22f;
        spec.gt_k = 10;
        spec.seed = 77;
        data_ = new workload::Dataset(generateDataset(spec));

        core::ReplayConfig config;
        config.duration_ns = 400'000'000;
        config.num_cores = 20;
        runner_ = new core::BenchRunner(config);
    }
    static void
    TearDownTestSuite()
    {
        delete runner_;
        delete data_;
        runner_ = nullptr;
        data_ = nullptr;
    }

    /** $ANN_CACHE_DIR when set, else a per-run temp directory. */
    static std::string
    cacheDir()
    {
        static const testutil::TempDir fallback("integration_test_cache");
        return envString("ANN_CACHE_DIR", fallback.path());
    }

    static workload::Dataset *data_;
    static core::BenchRunner *runner_;
};

workload::Dataset *PipelineFixture::data_ = nullptr;
core::BenchRunner *PipelineFixture::runner_ = nullptr;

TEST_F(PipelineFixture, TunedSetupsMeetRecallTarget)
{
    for (const auto kind : {MilvusIndexKind::Ivf, MilvusIndexKind::Hnsw,
                            MilvusIndexKind::DiskAnn}) {
        MilvusLikeEngine engine(kind);
        engine.prepare(*data_, cacheDir());
        const auto tuned = core::tuneEngine(engine, *data_, 0.9);
        EXPECT_GE(tuned.recall, 0.9) << engine.name();
    }
}

/**
 * KF-level shape tests run on the real benchmarked workload
 * (cohere-1m from the registry), because the paper-scale CPU
 * compensation and rows-per-list scaling only apply to registry
 * datasets. Set $ANN_CACHE_DIR to share index builds with the bench
 * binaries (later runs are instant); otherwise each test run builds
 * into a throwaway temp directory (~1-2 min).
 */
class PaperShapeFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new workload::Dataset(
            workload::loadOrGenerate("cohere-1m"));
        core::ReplayConfig config;
        config.duration_ns = 400'000'000;
        config.num_cores = 20;
        runner_ = new core::BenchRunner(config);
    }
    static void
    TearDownTestSuite()
    {
        delete runner_;
        delete data_;
        runner_ = nullptr;
        data_ = nullptr;
    }

    /** $ANN_CACHE_DIR when set, else a per-run temp directory. */
    static std::string
    cacheDir()
    {
        static const testutil::TempDir fallback("integration_test_cache");
        return envString("ANN_CACHE_DIR", fallback.path());
    }

    static workload::Dataset *data_;
    static core::BenchRunner *runner_;
};

workload::Dataset *PaperShapeFixture::data_ = nullptr;
core::BenchRunner *PaperShapeFixture::runner_ = nullptr;

TEST_F(PaperShapeFixture, Kf1StorageBasedIsNotNecessarilySlower)
{
    // KF-1: DiskANN (storage) beats IVF (memory) in throughput while
    // HNSW (memory) beats DiskANN — within the same database.
    MilvusLikeEngine ivf(MilvusIndexKind::Ivf);
    MilvusLikeEngine hnsw(MilvusIndexKind::Hnsw);
    MilvusLikeEngine dann(MilvusIndexKind::DiskAnn);
    const std::string cache = cacheDir();
    ivf.prepare(*data_, cache);
    hnsw.prepare(*data_, cache);
    dann.prepare(*data_, cache);

    const auto s_ivf = core::tunedSettings(ivf, *data_, 0.9).settings;
    const auto s_hnsw = core::tunedSettings(hnsw, *data_, 0.9).settings;
    const auto s_dann = core::tunedSettings(dann, *data_, 0.9).settings;

    const double q_ivf =
        runner_->measure(ivf, *data_, s_ivf, 64).replay.qps;
    const double q_hnsw =
        runner_->measure(hnsw, *data_, s_hnsw, 64).replay.qps;
    const double q_dann =
        runner_->measure(dann, *data_, s_dann, 64).replay.qps;

    EXPECT_GT(q_hnsw, q_dann);
    EXPECT_GT(q_dann, q_ivf);
}

TEST_F(PaperShapeFixture, Kf2SsdStaysUnsaturated)
{
    MilvusLikeEngine dann(MilvusIndexKind::DiskAnn);
    dann.prepare(*data_, cacheDir());
    SearchSettings settings;
    settings.search_list = 10;
    const auto m = runner_->measure(dann, *data_, settings, 256, true);
    // KF-2's substance: the SSD never saturates — the CPU is the
    // binding resource at full concurrency. (Scaled datasets sit at
    // a higher fraction of device bandwidth than the paper's 8.9%;
    // see EXPERIMENTS.md "Known deviations".)
    EXPECT_LT(m.replay.read_bw_mib, 0.75 * 7.2 * 1024.0);
    EXPECT_GT(m.replay.read_bw_mib, 0.0);
    EXPECT_GT(m.replay.mean_cpu_util, 0.75);
    // O-15: pure 4 KiB reads on the direct-I/O path.
    const auto summary = storage::summarizeTrace(m.replay.trace);
    EXPECT_DOUBLE_EQ(summary.fraction_4k_reads, 1.0);
}

TEST_F(PipelineFixture, Kf3SearchListTradeoff)
{
    MilvusLikeEngine dann(MilvusIndexKind::DiskAnn);
    dann.prepare(*data_, cacheDir());

    SearchSettings lo, hi;
    lo.search_list = 10;
    hi.search_list = 100;

    const auto &t_lo = runner_->traces(dann, *data_, lo);
    const auto &t_hi = runner_->traces(dann, *data_, hi);
    // Accuracy up...
    EXPECT_GE(t_hi.recall + 1e-9, t_lo.recall);
    // ...I/O up substantially...
    EXPECT_GT(t_hi.mib_per_query, 2.0 * t_lo.mib_per_query);

    // ...throughput down, latency up.
    const auto m_lo = runner_->measure(dann, *data_, lo, 16);
    const auto m_hi = runner_->measure(dann, *data_, hi, 16);
    EXPECT_LT(m_hi.replay.qps, m_lo.replay.qps);
    EXPECT_GT(m_hi.replay.p99_latency_us, m_lo.replay.p99_latency_us);
}

TEST_F(PipelineFixture, SegmentedEngineBeatenBySingleGraphOnBigData)
{
    // O-5/O-6 mechanism: Milvus pays per-segment, single-graph
    // engines pay once -- the gap shows in per-query CPU.
    MilvusLikeEngine milvus(MilvusIndexKind::Hnsw);
    engine::QdrantLikeEngine qdrant;
    milvus.prepare(*data_, cacheDir());
    qdrant.prepare(*data_, cacheDir());
    SearchSettings settings;
    settings.ef_search = 40;
    const auto m = milvus.search(data_->query(0), settings);
    const auto q = qdrant.search(data_->query(0), settings);
    EXPECT_EQ(m.trace.parallel_chains.size(), 2u);
    EXPECT_EQ(q.trace.parallel_chains.size(), 1u);
    // Milvus does ~2x the algorithmic distance work here.
    EXPECT_GT(m.trace.totalCpuNs() * 2,
              q.trace.totalCpuNs()); // sanity lower bound
}

TEST_F(PipelineFixture, ReplayQpsScalesThenSaturates)
{
    MilvusLikeEngine hnsw(MilvusIndexKind::Hnsw);
    hnsw.prepare(*data_, cacheDir());
    SearchSettings settings;
    settings.ef_search = 30;
    const double q1 =
        runner_->measure(hnsw, *data_, settings, 1).replay.qps;
    const double q32 =
        runner_->measure(hnsw, *data_, settings, 32).replay.qps;
    const double q256 =
        runner_->measure(hnsw, *data_, settings, 256).replay.qps;
    EXPECT_GT(q32, 4.0 * q1);
    // Saturation: going 32 -> 256 gains far less than 8x.
    EXPECT_LT(q256, 4.0 * q32);
}

} // namespace
} // namespace ann
