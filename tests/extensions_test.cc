/**
 * @file
 * Tests for the paper-extension features: the SPANN-like cluster
 * storage index (SS II baseline), Milvus ingest traces and the mixed
 * read/write replay (SS VIII future work), and the Qdrant mmap
 * storage mode (SS III-C).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hh"
#include "common/serialize.hh"
#include "core/bench_runner.hh"
#include "core/replay.hh"
#include "distance/recall.hh"
#include "engine/milvus_like.hh"
#include "engine/qdrant_like.hh"
#include "index/spann_index.hh"
#include "storage/trace_analysis.hh"
#include "test_util.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

using testutil::groundTruth;
using testutil::makeClusteredData;
using testutil::TestData;

class SpannFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        data_ = new TestData(makeClusteredData(2000, 40, 24, 2024));
        truth_ = new std::vector<std::vector<VectorId>>(
            groundTruth(*data_, 10));
        index_ = new SpannIndex();
        SpannBuildParams params;
        params.nlist = 40;
        params.closure_epsilon = 0.15f;
        params.max_replicas = 8;
        index_->build(data_->baseView(), params);
    }
    static void
    TearDownTestSuite()
    {
        delete index_;
        delete truth_;
        delete data_;
        index_ = nullptr;
        truth_ = nullptr;
        data_ = nullptr;
    }

    static TestData *data_;
    static std::vector<std::vector<VectorId>> *truth_;
    static SpannIndex *index_;
};

TestData *SpannFixture::data_ = nullptr;
std::vector<std::vector<VectorId>> *SpannFixture::truth_ = nullptr;
SpannIndex *SpannFixture::index_ = nullptr;

TEST_F(SpannFixture, ReplicationIsBoundedAndAboveOne)
{
    const double factor = index_->replicationFactor();
    EXPECT_GT(factor, 1.0); // border vectors are replicated...
    EXPECT_LE(factor, 8.0); // ...but capped (SPANN uses 8)
}

TEST_F(SpannFixture, ListsOccupyDisjointContiguousSectors)
{
    std::uint64_t cursor = 0;
    for (std::size_t list = 0; list < index_->nlist(); ++list) {
        EXPECT_EQ(index_->listSector(list), cursor);
        EXPECT_GE(index_->listSectorCount(list), 1u);
        cursor += index_->listSectorCount(list);
    }
    EXPECT_EQ(cursor, index_->numSectors());
}

TEST_F(SpannFixture, RecallGrowsWithNprobeAndReachesTarget)
{
    auto recall_at = [&](std::size_t nprobe) {
        SpannSearchParams params;
        params.nprobe = nprobe;
        params.k = 10;
        double acc = 0.0;
        for (std::size_t q = 0; q < data_->num_queries; ++q)
            acc += recallAtK((*truth_)[q],
                             index_->search(data_->queryView().row(q),
                                            params),
                             10);
        return acc / static_cast<double>(data_->num_queries);
    };
    const double r2 = recall_at(2);
    const double r8 = recall_at(8);
    EXPECT_GE(r8 + 1e-9, r2);
    EXPECT_GT(r8, 0.9);
}

TEST_F(SpannFixture, SearchIsOneParallelIoRound)
{
    SpannSearchParams params;
    params.nprobe = 5;
    params.k = 10;
    SearchTraceRecorder recorder;
    index_->search(data_->queryView().row(0), params, &recorder);
    // Exactly one step carries reads: no I/O dependencies (the
    // contrast with DiskANN's multi-hop beams).
    std::size_t io_steps = 0, read_runs = 0;
    for (const SearchStep &step : recorder.steps()) {
        if (step.reads.empty())
            continue;
        ++io_steps;
        read_runs += step.reads.size();
    }
    EXPECT_EQ(io_steps, 1u);
    EXPECT_EQ(read_runs, 5u); // one sequential run per probed list
}

TEST_F(SpannFixture, MemoryHoldsOnlyCentroids)
{
    EXPECT_EQ(index_->memoryBytes(),
              index_->nlist() * data_->dim * sizeof(float));
    EXPECT_GT(index_->numSectors(), 0u);
}

TEST_F(SpannFixture, SaveLoadPreservesResults)
{
    const std::string path = "spann_test.bin";
    {
        BinaryWriter writer(path, "SPT", 1);
        index_->save(writer);
        writer.close();
    }
    SpannIndex loaded;
    {
        BinaryReader reader(path, "SPT", 1);
        loaded.load(reader);
    }
    SpannSearchParams params;
    params.nprobe = 4;
    for (std::size_t q = 0; q < 10; ++q) {
        const float *query = data_->queryView().row(q);
        EXPECT_EQ(index_->search(query, params),
                  loaded.search(query, params));
    }
    EXPECT_DOUBLE_EQ(loaded.replicationFactor(),
                     index_->replicationFactor());
    std::remove(path.c_str());
}

TEST_F(SpannFixture, HigherEpsilonMeansMoreReplication)
{
    SpannIndex tight, loose;
    SpannBuildParams params;
    params.nlist = 40;
    params.closure_epsilon = 0.02f;
    tight.build(data_->baseView(), params);
    params.closure_epsilon = 0.4f;
    loose.build(data_->baseView(), params);
    EXPECT_GT(loose.replicationFactor(), tight.replicationFactor());
}

class ReadWriteFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        std::filesystem::create_directories("./ext_test_cache");
        workload::GeneratorSpec spec;
        spec.name = "ext-test";
        spec.rows = 4000;
        spec.dim = 16;
        spec.num_queries = 30;
        spec.clusters = 12;
        spec.gt_k = 10;
        spec.seed = 3;
        data_ = new workload::Dataset(generateDataset(spec));
        engine_ = new engine::MilvusLikeEngine(
            engine::MilvusIndexKind::DiskAnn);
        engine_->prepare(*data_, "./ext_test_cache");
    }
    static void
    TearDownTestSuite()
    {
        delete engine_;
        delete data_;
        engine_ = nullptr;
        data_ = nullptr;
        std::filesystem::remove_all("./ext_test_cache");
    }

    static workload::Dataset *data_;
    static engine::MilvusLikeEngine *engine_;
};

workload::Dataset *ReadWriteFixture::data_ = nullptr;
engine::MilvusLikeEngine *ReadWriteFixture::engine_ = nullptr;

TEST_F(ReadWriteFixture, IngestTraceHasWritesAndCpu)
{
    const auto trace = engine_->buildIngestTrace(500);
    EXPECT_GT(trace.totalWriteSectors(), 0u);
    EXPECT_EQ(trace.totalReadSectors(), 0u);
    EXPECT_GT(trace.totalCpuNs(), 0u);
    // 2x write amplification over the raw node count.
    const std::size_t nps =
        4096 / (16 * 4 + 4 + 64 * 4); // dim 16, R 64
    EXPECT_EQ(trace.totalWriteSectors(),
              2 * ((500 + nps - 1) / nps));
}

TEST_F(ReadWriteFixture, IngestTracesAdvanceTheLog)
{
    const auto a = engine_->buildIngestTrace(100);
    const auto b = engine_->buildIngestTrace(100);
    const auto &wa = a.parallel_chains[0][0].writes[0];
    const auto &wb = b.parallel_chains[0][0].writes[0];
    EXPECT_NE(wa.sector, wb.sector);
}

TEST_F(ReadWriteFixture, IngestRejectedOnNonDiskAnnKinds)
{
    engine::MilvusLikeEngine hnsw(engine::MilvusIndexKind::Hnsw);
    hnsw.prepare(*data_, "./ext_test_cache");
    EXPECT_THROW(hnsw.buildIngestTrace(10), FatalError);
}

TEST_F(ReadWriteFixture, MixedReplayShowsReadWriteInterference)
{
    engine::SearchSettings settings;
    settings.search_list = 15;
    const auto workload =
        core::buildWorkloadTraces(*engine_, *data_, settings);

    std::vector<engine::QueryTrace> ingest;
    for (int i = 0; i < 8; ++i)
        ingest.push_back(engine_->buildIngestTrace(2000));

    core::ReplayConfig config;
    config.client_threads = 8;
    config.duration_ns = 500'000'000;
    config.num_cores = 8;
    config.cpu_jitter = 0.0;

    const auto quiet = core::replayMixedWorkload(
        workload.traces, ingest, 0, engine_->profile(), config);
    const auto busy = core::replayMixedWorkload(
        workload.traces, ingest, 8, engine_->profile(), config);

    EXPECT_EQ(quiet.write_bytes, 0u);
    EXPECT_GT(busy.write_bytes, 0u);
    EXPECT_GT(busy.ingest_completed, 0u);
    // NAND read-write interference: search latency degrades and
    // throughput drops when writes share the device.
    EXPECT_GT(busy.p99_latency_us, quiet.p99_latency_us);
    EXPECT_LT(busy.qps, quiet.qps);
}

TEST(MmapModeTest, ResidentCacheMatchesMemoryResults)
{
    std::filesystem::create_directories("./ext_mmap_cache");
    workload::GeneratorSpec spec;
    spec.name = "mmap-test";
    spec.rows = 3000;
    spec.dim = 16;
    spec.num_queries = 20;
    spec.clusters = 10;
    spec.gt_k = 10;
    spec.seed = 4;
    const auto data = generateDataset(spec);

    engine::QdrantLikeEngine memory_mode(false);
    engine::QdrantLikeEngine mmap_mode(true, 1 << 16);
    memory_mode.prepare(data, "./ext_mmap_cache");
    mmap_mode.prepare(data, "./ext_mmap_cache");

    engine::SearchSettings settings;
    settings.ef_search = 40;
    // Identical result sets (same graph), different I/O behaviour.
    for (std::size_t q = 0; q < 10; ++q) {
        const auto a = memory_mode.search(data.query(q), settings);
        const auto b = mmap_mode.search(data.query(q), settings);
        EXPECT_EQ(a.results, b.results);
        EXPECT_EQ(a.trace.totalReadSectors(), 0u);
        EXPECT_GT(b.trace.totalReadSectors(), 0u);
    }
    EXPECT_TRUE(mmap_mode.profile().storage_based);
    EXPECT_FALSE(mmap_mode.profile().direct_io);
    EXPECT_GT(mmap_mode.diskSectors(), 0u);
    std::filesystem::remove_all("./ext_mmap_cache");
}

TEST(MmapModeTest, DependentFaultsAreSequentialSteps)
{
    workload::GeneratorSpec spec;
    spec.name = "mmap-test2";
    spec.rows = 2000;
    spec.dim = 16;
    spec.num_queries = 5;
    spec.clusters = 8;
    spec.gt_k = 10;
    spec.seed = 5;
    const auto data = generateDataset(spec);
    std::filesystem::create_directories("./ext_mmap_cache2");
    engine::QdrantLikeEngine mmap_mode(true);
    mmap_mode.prepare(data, "./ext_mmap_cache2");

    engine::SearchSettings settings;
    settings.ef_search = 30;
    const auto out = mmap_mode.search(data.query(0), settings);
    // Page faults are dependent: one sector per step, never beams.
    const auto &chain = out.trace.parallel_chains.at(0);
    EXPECT_GT(chain.size(), 10u);
    for (const auto &step : chain) {
        EXPECT_LE(step.reads.size(), 1u);
        if (!step.reads.empty())
            EXPECT_EQ(step.reads[0].count, 1u);
    }
    std::filesystem::remove_all("./ext_mmap_cache2");
}

} // namespace
} // namespace ann
