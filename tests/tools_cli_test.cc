/**
 * @file
 * Argument-hygiene tests for the shipped CLIs: unknown flags and
 * invalid enum values must exit non-zero and name the valid choices
 * instead of crashing or silently defaulting. Each case runs the real
 * binary (paths baked in at build time) and fails fast — every probed
 * error is detected before any dataset or index work starts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "learn/hoplog.hh"
#include "learn/model.hh"

namespace {

struct RunResult
{
    int exit_code = -1;
    std::string output; // stdout + stderr interleaved
};

RunResult
run(const std::string &command)
{
    RunResult result;
    FILE *pipe = ::popen((command + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr)
        return result;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        result.output.append(buf, n);
    const int status = ::pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

TEST(ToolsCliTest, AnnbenchRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNBENCH_PATH) + " --no-such-flag");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ToolsCliTest, AnnbenchRejectsInvalidIoBackend)
{
    const auto r = run(std::string(ANNBENCH_PATH) +
                       " --io-backend bogus");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("memory|file|uring"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnbenchRejectsMalformedThreadList)
{
    const auto r = run(std::string(ANNBENCH_PATH) +
                       " --threads 1,abc,4");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("positive integers"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnserveRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNSERVE_PATH) + " --bogus-flag");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ToolsCliTest, AnnserveRejectsInvalidIoBackend)
{
    const auto r = run(std::string(ANNSERVE_PATH) +
                       " --io-backend nvme-of");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("memory|file|uring"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRequiresPort)
{
    const auto r = run(std::string(ANNLOAD_PATH));
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("--port (or --topology) is required"),
              std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNLOAD_PATH) + " --warmup 5");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsMalformedClientList)
{
    const auto r = run(std::string(ANNLOAD_PATH) +
                       " --port 1 --clients 1,,8");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("positive integers"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsNonNumericOption)
{
    const auto r = run(std::string(ANNLOAD_PATH) +
                       " --port 1 --min-recall high");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("expects a number"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnntrainRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNTRAIN_PATH) + " --learn-rate 1");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ToolsCliTest, AnntrainRequiresInputAndOutput)
{
    const auto missing_input = run(std::string(ANNTRAIN_PATH));
    EXPECT_NE(missing_input.exit_code, 0);
    EXPECT_NE(missing_input.output.find("--input is required"),
              std::string::npos)
        << missing_input.output;

    const auto missing_output =
        run(std::string(ANNTRAIN_PATH) + " --input hops.csv");
    EXPECT_NE(missing_output.exit_code, 0);
    EXPECT_NE(missing_output.output.find("--output is required"),
              std::string::npos)
        << missing_output.output;
}

TEST(ToolsCliTest, AnntrainTrainsFromDumpedHops)
{
    // End to end over the real file formats: dump a tiny labeled hop
    // log, train on it, and load the resulting model back.
    const std::string csv = "tools_cli_anntrain_hops.csv";
    const std::string model_path = "tools_cli_anntrain.model";
    std::vector<ann::learn::QueryHopTrace> traces(40);
    for (std::size_t q = 0; q < traces.size(); ++q) {
        traces[q].query_seq = q;
        for (std::uint32_t hop = 0; hop < 6; ++hop) {
            ann::learn::HopRecord h;
            h.node = hop;
            h.hop = hop;
            // Early hops sit close to the frontier and reach the
            // top-k; late hops drift away and never do.
            h.adc = 1.0f + static_cast<float>(hop);
            h.best_adc = 1.0f;
            h.kth_adc = 3.0f;
            h.entry_adc = 6.0f;
            h.reached_topk = hop < 2 ? 1 : 0;
            traces[q].hops.push_back(h);
        }
    }
    ann::learn::writeHopCsvFile(csv, traces);

    const auto r = run(std::string(ANNTRAIN_PATH) + " --input " + csv +
                       " --output " + model_path +
                       " --hidden 4 --epochs 30");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("wrote " + model_path), std::string::npos)
        << r.output;

    const ann::learn::Model model =
        ann::learn::Model::loadFile(model_path);
    EXPECT_TRUE(model.valid());
    EXPECT_EQ(model.hiddenUnits(), 4u);
    EXPECT_GT(model.threshold(), 0.0f);
    std::remove(csv.c_str());
    std::remove(model_path.c_str());
}

TEST(ToolsCliTest, HelpExitsZero)
{
    EXPECT_EQ(run(std::string(ANNBENCH_PATH) + " --help").exit_code, 0);
    EXPECT_EQ(run(std::string(ANNSERVE_PATH) + " --help").exit_code, 0);
    EXPECT_EQ(run(std::string(ANNLOAD_PATH) + " --help").exit_code, 0);
    EXPECT_EQ(run(std::string(ANNTRAIN_PATH) + " --help").exit_code, 0);
}

} // namespace
