/**
 * @file
 * Argument-hygiene tests for the shipped CLIs: unknown flags and
 * invalid enum values must exit non-zero and name the valid choices
 * instead of crashing or silently defaulting. Each case runs the real
 * binary (paths baked in at build time) and fails fast — every probed
 * error is detected before any dataset or index work starts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct RunResult
{
    int exit_code = -1;
    std::string output; // stdout + stderr interleaved
};

RunResult
run(const std::string &command)
{
    RunResult result;
    FILE *pipe = ::popen((command + " 2>&1").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr)
        return result;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        result.output.append(buf, n);
    const int status = ::pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

TEST(ToolsCliTest, AnnbenchRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNBENCH_PATH) + " --no-such-flag");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ToolsCliTest, AnnbenchRejectsInvalidIoBackend)
{
    const auto r = run(std::string(ANNBENCH_PATH) +
                       " --io-backend bogus");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("memory|file|uring"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnbenchRejectsMalformedThreadList)
{
    const auto r = run(std::string(ANNBENCH_PATH) +
                       " --threads 1,abc,4");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("positive integers"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnserveRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNSERVE_PATH) + " --bogus-flag");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(ToolsCliTest, AnnserveRejectsInvalidIoBackend)
{
    const auto r = run(std::string(ANNSERVE_PATH) +
                       " --io-backend nvme-of");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("memory|file|uring"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRequiresPort)
{
    const auto r = run(std::string(ANNLOAD_PATH));
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("--port is required"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsUnknownFlag)
{
    const auto r = run(std::string(ANNLOAD_PATH) + " --warmup 5");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("unknown option"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsMalformedClientList)
{
    const auto r = run(std::string(ANNLOAD_PATH) +
                       " --port 1 --clients 1,,8");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("positive integers"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, AnnloadRejectsNonNumericOption)
{
    const auto r = run(std::string(ANNLOAD_PATH) +
                       " --port 1 --min-recall high");
    EXPECT_NE(r.exit_code, 0);
    EXPECT_NE(r.output.find("expects a number"), std::string::npos)
        << r.output;
}

TEST(ToolsCliTest, HelpExitsZero)
{
    EXPECT_EQ(run(std::string(ANNBENCH_PATH) + " --help").exit_code, 0);
    EXPECT_EQ(run(std::string(ANNSERVE_PATH) + " --help").exit_code, 0);
    EXPECT_EQ(run(std::string(ANNLOAD_PATH) + " --help").exit_code, 0);
}

} // namespace
