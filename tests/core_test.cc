/**
 * @file
 * Tests for the characterization framework: replay semantics, the
 * bench runner, and the parameter tuner.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/error.hh"
#include "core/bench_runner.hh"
#include "engine/milvus_like.hh"
#include "core/experiments.hh"
#include "core/replay.hh"
#include "core/tuner.hh"
#include "storage/trace_analysis.hh"
#include "test_util.hh"
#include "workload/generator.hh"

namespace ann {
namespace {

using core::ReplayConfig;
using core::ReplayResult;
using engine::EngineProfile;
using engine::QueryTrace;
using engine::SearchSettings;

/** A simple CPU-only trace: rtt + one chain with fixed CPU. */
QueryTrace
cpuTrace(SimTime cpu_ns, SimTime rtt_ns = 100'000)
{
    QueryTrace trace;
    trace.rtt_ns = rtt_ns;
    trace.parallel_chains.push_back({{cpu_ns, {}}});
    return trace;
}

/** A trace with one I/O batch of @p sectors single-sector reads. */
QueryTrace
ioTrace(SimTime cpu_ns, std::size_t sectors)
{
    QueryTrace trace;
    trace.rtt_ns = 50'000;
    std::vector<SectorRead> reads;
    for (std::size_t s = 0; s < sectors; ++s)
        reads.push_back({s * 17 + 1, 1});
    trace.parallel_chains.push_back({{cpu_ns, std::move(reads)}});
    return trace;
}

EngineProfile
plainProfile()
{
    EngineProfile profile;
    profile.name = "test";
    profile.rtt_ns = 0;
    profile.proxy_cpu_ns = 0;
    profile.merge_cpu_ns = 0;
    profile.serial_cpu_ns = 0;
    profile.batch_fraction = 0.0;
    profile.direct_io = true;
    return profile;
}

ReplayConfig
testConfig(std::size_t threads, SimTime duration = 500'000'000)
{
    ReplayConfig config;
    config.client_threads = threads;
    config.duration_ns = duration;
    config.num_cores = 4;
    config.cpu_jitter = 0.0;
    return config;
}

TEST(ReplayTest, SingleThreadQpsMatchesServiceTime)
{
    // 1 ms CPU + 0.1 ms RTT -> ~909 QPS on one client.
    std::vector<QueryTrace> traces{cpuTrace(1'000'000)};
    const auto result =
        replayWorkload(traces, plainProfile(), testConfig(1));
    EXPECT_NEAR(result.qps, 909.0, 20.0);
    EXPECT_NEAR(result.mean_latency_us, 1100.0, 20.0);
    EXPECT_FALSE(result.oom);
}

TEST(ReplayTest, ThroughputSaturatesAtCoreCount)
{
    // 4 cores, 1 ms pure-CPU queries -> cap at ~4000 QPS.
    std::vector<QueryTrace> traces{cpuTrace(1'000'000, 0)};
    const auto r8 =
        replayWorkload(traces, plainProfile(), testConfig(8));
    const auto r32 =
        replayWorkload(traces, plainProfile(), testConfig(32));
    EXPECT_NEAR(r8.qps, 4000.0, 150.0);
    EXPECT_NEAR(r32.qps, 4000.0, 150.0);
    // Queueing raises latency with more clients.
    EXPECT_GT(r32.p99_latency_us, 2.0 * r8.p99_latency_us);
    EXPECT_NEAR(r32.mean_cpu_util, 1.0, 0.05);
}

TEST(ReplayTest, RttHidingGivesNearLinearLowConcurrency)
{
    // RTT-dominated workload scales ~linearly while cores are free.
    std::vector<QueryTrace> traces{cpuTrace(50'000, 1'000'000)};
    const auto r1 =
        replayWorkload(traces, plainProfile(), testConfig(1));
    const auto r8 =
        replayWorkload(traces, plainProfile(), testConfig(8));
    EXPECT_GT(r8.qps, 7.0 * r1.qps);
}

TEST(ReplayTest, BatchFractionGivesSuperlinearScaling)
{
    EngineProfile profile = plainProfile();
    profile.batch_fraction = 0.6; // coalescing amortizes 60% of CPU
    std::vector<QueryTrace> traces{cpuTrace(1'000'000, 500'000)};
    ReplayConfig config = testConfig(1);
    config.num_cores = 20; // the paper's testbed width
    const auto r1 = replayWorkload(traces, profile, config);
    config.client_threads = 16;
    const auto r16 = replayWorkload(traces, profile, config);
    // Superlinear: O-4's signature.
    EXPECT_GT(r16.qps, 18.0 * r1.qps);
}

TEST(ReplayTest, SerialSectionCapsThroughput)
{
    EngineProfile profile = plainProfile();
    profile.serial_cpu_ns = 1'000'000; // 1 ms under a global lock
    std::vector<QueryTrace> traces;
    {
        QueryTrace t = cpuTrace(100'000, 0);
        t.serial_cpu_ns = profile.serial_cpu_ns;
        traces.push_back(t);
    }
    const auto r64 = replayWorkload(traces, profile, testConfig(64));
    EXPECT_LT(r64.qps, 1100.0); // <= 1/serial
    EXPECT_GT(r64.qps, 800.0);
}

TEST(ReplayTest, OomAboveClientLimit)
{
    EngineProfile profile = plainProfile();
    profile.max_client_threads = 16;
    std::vector<QueryTrace> traces{cpuTrace(100'000)};
    EXPECT_FALSE(
        replayWorkload(traces, profile, testConfig(16)).oom);
    const auto r = replayWorkload(traces, profile, testConfig(17));
    EXPECT_TRUE(r.oom);
    EXPECT_EQ(r.completed, 0u);
}

TEST(ReplayTest, IoTracesProduceBlockEvents)
{
    std::vector<QueryTrace> traces{ioTrace(50'000, 8)};
    ReplayConfig config = testConfig(4);
    config.collect_trace = true;
    const auto result =
        replayWorkload(traces, plainProfile(), config);
    EXPECT_GT(result.completed, 0u);
    EXPECT_FALSE(result.trace.empty());
    const auto summary = storage::summarizeTrace(result.trace);
    EXPECT_EQ(summary.read_requests % 8, 0u);
    EXPECT_DOUBLE_EQ(summary.fraction_4k_reads, 1.0);
    // Bytes flow consistently: 8 sectors per completed query, with at
    // most the in-flight remainder outstanding.
    EXPECT_NEAR(static_cast<double>(result.read_bytes),
                static_cast<double>(result.completed) * 8 * 4096,
                8.0 * 4096 * 8);
    EXPECT_GT(result.read_bw_mib, 0.0);
}

TEST(ReplayTest, IoWaitsKeepCpuIdle)
{
    // I/O-heavy queries: CPU utilization stays well below 1 even
    // though clients saturate (KF-2's CPU-vs-SSD signature).
    std::vector<QueryTrace> traces{ioTrace(20'000, 16)};
    const auto result =
        replayWorkload(traces, plainProfile(), testConfig(8));
    EXPECT_LT(result.mean_cpu_util, 0.8);
    EXPECT_GT(result.qps, 100.0);
}

TEST(ReplayTest, DeterministicAcrossRuns)
{
    std::vector<QueryTrace> traces{ioTrace(100'000, 4),
                                   cpuTrace(300'000)};
    const auto a = replayWorkload(traces, plainProfile(),
                                  testConfig(6));
    const auto b = replayWorkload(traces, plainProfile(),
                                  testConfig(6));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.read_bytes, b.read_bytes);
    EXPECT_DOUBLE_EQ(a.p99_latency_us, b.p99_latency_us);
}

TEST(ReplayTest, WorkerSlotsLimitParallelChains)
{
    EngineProfile profile = plainProfile();
    profile.worker_slots = 1; // everything serialized server-side
    std::vector<QueryTrace> traces;
    {
        QueryTrace t;
        t.rtt_ns = 0;
        t.parallel_chains.push_back({{1'000'000, {}}});
        t.parallel_chains.push_back({{1'000'000, {}}});
        traces.push_back(t);
    }
    const auto result =
        replayWorkload(traces, profile, testConfig(8));
    // 2 chains x 1 ms through a single slot -> <= 500 QPS.
    EXPECT_LT(result.qps, 550.0);
}

TEST(TunerTest, MonotonicSearchFindsThreshold)
{
    auto recall_of = [](std::size_t v) {
        return v >= 37 ? 0.95 : 0.5;
    };
    double achieved = 0.0;
    EXPECT_EQ(core::tuneMonotonic(recall_of, 1, 1024, 0.9, &achieved),
              37u);
    EXPECT_DOUBLE_EQ(achieved, 0.95);
}

TEST(TunerTest, LowBoundShortCircuit)
{
    auto recall_of = [](std::size_t) { return 1.0; };
    double achieved = 0.0;
    EXPECT_EQ(core::tuneMonotonic(recall_of, 10, 512, 0.9, &achieved),
              10u);
}

TEST(TunerTest, UnreachableTargetReturnsUpperBound)
{
    auto recall_of = [](std::size_t) { return 0.5; };
    double achieved = 0.0;
    EXPECT_EQ(core::tuneMonotonic(recall_of, 1, 64, 0.9, &achieved),
              64u);
    EXPECT_DOUBLE_EQ(achieved, 0.5);
}

TEST(TunerTest, ParamKindFollowsEngineName)
{
    EXPECT_EQ(core::tunableParamFor("milvus-ivf"),
              core::TunableParam::Nprobe);
    EXPECT_EQ(core::tunableParamFor("milvus-diskann"),
              core::TunableParam::SearchList);
    EXPECT_EQ(core::tunableParamFor("qdrant-hnsw"),
              core::TunableParam::EfSearch);
    EXPECT_EQ(core::tunableParamFor("lancedb-ivfpq"),
              core::TunableParam::Nprobe);
}

class RunnerFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        cacheDir_ = new testutil::TempDir("core_test_cache");
        ::setenv("ANN_CACHE_DIR", cacheDir_->path().c_str(), 1);
        workload::GeneratorSpec spec;
        spec.name = "core-test";
        spec.rows = 3000;
        spec.dim = 16;
        spec.num_queries = 30;
        spec.clusters = 10;
        spec.gt_k = 10;
        spec.seed = 5;
        data_ = new workload::Dataset(generateDataset(spec));
        engine_ = new engine::MilvusLikeEngine(
            engine::MilvusIndexKind::DiskAnn);
        engine_->prepare(*data_, cacheDir_->path());
    }
    static void
    TearDownTestSuite()
    {
        delete engine_;
        delete data_;
        engine_ = nullptr;
        data_ = nullptr;
        delete cacheDir_;
        cacheDir_ = nullptr;
        ::unsetenv("ANN_CACHE_DIR");
    }

    static workload::Dataset *data_;
    static engine::MilvusLikeEngine *engine_;
    static testutil::TempDir *cacheDir_;
};

workload::Dataset *RunnerFixture::data_ = nullptr;
engine::MilvusLikeEngine *RunnerFixture::engine_ = nullptr;
testutil::TempDir *RunnerFixture::cacheDir_ = nullptr;

TEST_F(RunnerFixture, TracesAreMemoized)
{
    core::BenchRunner runner(testConfig(1));
    SearchSettings settings;
    settings.search_list = 15;
    const auto &a = runner.traces(*engine_, *data_, settings);
    const auto &b = runner.traces(*engine_, *data_, settings);
    EXPECT_EQ(&a, &b);
    settings.search_list = 25;
    const auto &c = runner.traces(*engine_, *data_, settings);
    EXPECT_NE(&a, &c);
}

TEST_F(RunnerFixture, MeasurementHasConsistentMetrics)
{
    core::BenchRunner runner(testConfig(4));
    SearchSettings settings;
    settings.search_list = 15;
    const auto m =
        runner.measure(*engine_, *data_, settings, 4, true);
    EXPECT_GT(m.replay.qps, 0.0);
    EXPECT_GT(m.recall, 0.8);
    EXPECT_GT(m.mib_per_query, 0.0);
    EXPECT_FALSE(m.replay.trace.empty());
    // Replayed I/O per completed query matches the structural value.
    const double replay_mib_per_query =
        static_cast<double>(m.replay.read_bytes) / (1024.0 * 1024.0) /
        static_cast<double>(m.replay.completed);
    EXPECT_NEAR(replay_mib_per_query, m.mib_per_query,
                0.25 * m.mib_per_query);
}

TEST_F(RunnerFixture, TunerReachesTargetAndCaches)
{
    const auto tuned = core::tunedSettings(*engine_, *data_, 0.9);
    EXPECT_GE(tuned.recall, 0.9);
    EXPECT_GE(tuned.settings.search_list, 10u);
    // Cached second call returns the identical settings.
    const auto again = core::tunedSettings(*engine_, *data_, 0.9);
    EXPECT_EQ(again.settings.search_list, tuned.settings.search_list);
    EXPECT_DOUBLE_EQ(again.recall, tuned.recall);
}

TEST(ExperimentsTest, SetupAndSweepDefinitions)
{
    const auto setups = core::allSetups();
    EXPECT_EQ(setups.size(), 7u);
    for (const auto &name : setups)
        EXPECT_NE(core::makeEngine(name), nullptr);
    EXPECT_THROW(core::makeEngine("pinecone"), FatalError);

    const auto threads = core::threadSweep();
    EXPECT_EQ(threads.front(), 1u);
    EXPECT_EQ(threads.back(), 256u);
    EXPECT_EQ(core::searchListSweep().front(), 10u);
    EXPECT_EQ(core::searchListSweep().back(), 100u);
}

} // namespace
} // namespace ann
