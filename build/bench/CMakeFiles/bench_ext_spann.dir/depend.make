# Empty dependencies file for bench_ext_spann.
# This may be replaced when dependencies are built.
