file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_spann.dir/bench_ext_spann.cpp.o"
  "CMakeFiles/bench_ext_spann.dir/bench_ext_spann.cpp.o.d"
  "bench_ext_spann"
  "bench_ext_spann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_spann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
