# Empty compiler generated dependencies file for bench_fig5_bw_timeline.
# This may be replaced when dependencies are built.
