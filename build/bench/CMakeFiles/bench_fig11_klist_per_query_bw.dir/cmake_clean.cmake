file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_klist_per_query_bw.dir/bench_fig11_klist_per_query_bw.cpp.o"
  "CMakeFiles/bench_fig11_klist_per_query_bw.dir/bench_fig11_klist_per_query_bw.cpp.o.d"
  "bench_fig11_klist_per_query_bw"
  "bench_fig11_klist_per_query_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_klist_per_query_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
