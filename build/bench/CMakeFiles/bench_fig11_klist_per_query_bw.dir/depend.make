# Empty dependencies file for bench_fig11_klist_per_query_bw.
# This may be replaced when dependencies are built.
