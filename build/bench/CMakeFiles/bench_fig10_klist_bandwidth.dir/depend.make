# Empty dependencies file for bench_fig10_klist_bandwidth.
# This may be replaced when dependencies are built.
