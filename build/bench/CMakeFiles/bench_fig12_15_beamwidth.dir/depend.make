# Empty dependencies file for bench_fig12_15_beamwidth.
# This may be replaced when dependencies are built.
