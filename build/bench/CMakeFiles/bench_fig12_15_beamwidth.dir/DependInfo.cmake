
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_15_beamwidth.cpp" "bench/CMakeFiles/bench_fig12_15_beamwidth.dir/bench_fig12_15_beamwidth.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_15_beamwidth.dir/bench_fig12_15_beamwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ann_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
