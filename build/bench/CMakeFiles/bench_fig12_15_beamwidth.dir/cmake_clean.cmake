file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_15_beamwidth.dir/bench_fig12_15_beamwidth.cpp.o"
  "CMakeFiles/bench_fig12_15_beamwidth.dir/bench_fig12_15_beamwidth.cpp.o.d"
  "bench_fig12_15_beamwidth"
  "bench_fig12_15_beamwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_15_beamwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
