# Empty dependencies file for bench_fig8_klist_latency.
# This may be replaced when dependencies are built.
