# Empty dependencies file for bench_ssd_baseline.
# This may be replaced when dependencies are built.
