file(REMOVE_RECURSE
  "CMakeFiles/bench_ssd_baseline.dir/bench_ssd_baseline.cpp.o"
  "CMakeFiles/bench_ssd_baseline.dir/bench_ssd_baseline.cpp.o.d"
  "bench_ssd_baseline"
  "bench_ssd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
