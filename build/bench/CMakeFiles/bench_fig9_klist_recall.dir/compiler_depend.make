# Empty compiler generated dependencies file for bench_fig9_klist_recall.
# This may be replaced when dependencies are built.
