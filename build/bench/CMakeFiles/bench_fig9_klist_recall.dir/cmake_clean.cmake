file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_klist_recall.dir/bench_fig9_klist_recall.cpp.o"
  "CMakeFiles/bench_fig9_klist_recall.dir/bench_fig9_klist_recall.cpp.o.d"
  "bench_fig9_klist_recall"
  "bench_fig9_klist_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_klist_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
