# Empty dependencies file for bench_ext_mmap.
# This may be replaced when dependencies are built.
