file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mmap.dir/bench_ext_mmap.cpp.o"
  "CMakeFiles/bench_ext_mmap.dir/bench_ext_mmap.cpp.o.d"
  "bench_ext_mmap"
  "bench_ext_mmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
