# Empty compiler generated dependencies file for bench_ext_readwrite.
# This may be replaced when dependencies are built.
