file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_readwrite.dir/bench_ext_readwrite.cpp.o"
  "CMakeFiles/bench_ext_readwrite.dir/bench_ext_readwrite.cpp.o.d"
  "bench_ext_readwrite"
  "bench_ext_readwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_readwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
