# Empty dependencies file for cluster_quant_test.
# This may be replaced when dependencies are built.
