file(REMOVE_RECURSE
  "CMakeFiles/cluster_quant_test.dir/cluster_quant_test.cc.o"
  "CMakeFiles/cluster_quant_test.dir/cluster_quant_test.cc.o.d"
  "cluster_quant_test"
  "cluster_quant_test.pdb"
  "cluster_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
