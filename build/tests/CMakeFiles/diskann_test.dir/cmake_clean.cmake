file(REMOVE_RECURSE
  "CMakeFiles/diskann_test.dir/diskann_test.cc.o"
  "CMakeFiles/diskann_test.dir/diskann_test.cc.o.d"
  "diskann_test"
  "diskann_test.pdb"
  "diskann_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskann_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
