# Empty dependencies file for diskann_test.
# This may be replaced when dependencies are built.
