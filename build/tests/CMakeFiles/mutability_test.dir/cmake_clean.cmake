file(REMOVE_RECURSE
  "CMakeFiles/mutability_test.dir/mutability_test.cc.o"
  "CMakeFiles/mutability_test.dir/mutability_test.cc.o.d"
  "mutability_test"
  "mutability_test.pdb"
  "mutability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
