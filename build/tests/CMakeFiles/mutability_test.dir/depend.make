# Empty dependencies file for mutability_test.
# This may be replaced when dependencies are built.
