file(REMOVE_RECURSE
  "CMakeFiles/rag_pipeline.dir/rag_pipeline.cpp.o"
  "CMakeFiles/rag_pipeline.dir/rag_pipeline.cpp.o.d"
  "rag_pipeline"
  "rag_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
