file(REMOVE_RECURSE
  "CMakeFiles/annbench.dir/annbench.cpp.o"
  "CMakeFiles/annbench.dir/annbench.cpp.o.d"
  "annbench"
  "annbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
