# Empty compiler generated dependencies file for annbench.
# This may be replaced when dependencies are built.
