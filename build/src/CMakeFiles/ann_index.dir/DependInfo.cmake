
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/ann_index.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/index/diskann_index.cc" "src/CMakeFiles/ann_index.dir/index/diskann_index.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/diskann_index.cc.o.d"
  "/root/repo/src/index/flat_index.cc" "src/CMakeFiles/ann_index.dir/index/flat_index.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/flat_index.cc.o.d"
  "/root/repo/src/index/hnsw_index.cc" "src/CMakeFiles/ann_index.dir/index/hnsw_index.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/hnsw_index.cc.o.d"
  "/root/repo/src/index/ivf_index.cc" "src/CMakeFiles/ann_index.dir/index/ivf_index.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/ivf_index.cc.o.d"
  "/root/repo/src/index/search_trace.cc" "src/CMakeFiles/ann_index.dir/index/search_trace.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/search_trace.cc.o.d"
  "/root/repo/src/index/spann_index.cc" "src/CMakeFiles/ann_index.dir/index/spann_index.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/spann_index.cc.o.d"
  "/root/repo/src/index/vamana.cc" "src/CMakeFiles/ann_index.dir/index/vamana.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/index/vamana.cc.o.d"
  "/root/repo/src/quant/product_quantizer.cc" "src/CMakeFiles/ann_index.dir/quant/product_quantizer.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/quant/product_quantizer.cc.o.d"
  "/root/repo/src/quant/scalar_quantizer.cc" "src/CMakeFiles/ann_index.dir/quant/scalar_quantizer.cc.o" "gcc" "src/CMakeFiles/ann_index.dir/quant/scalar_quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ann_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
