file(REMOVE_RECURSE
  "libann_index.a"
)
