# Empty compiler generated dependencies file for ann_index.
# This may be replaced when dependencies are built.
