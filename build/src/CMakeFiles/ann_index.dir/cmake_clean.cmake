file(REMOVE_RECURSE
  "CMakeFiles/ann_index.dir/cluster/kmeans.cc.o"
  "CMakeFiles/ann_index.dir/cluster/kmeans.cc.o.d"
  "CMakeFiles/ann_index.dir/index/diskann_index.cc.o"
  "CMakeFiles/ann_index.dir/index/diskann_index.cc.o.d"
  "CMakeFiles/ann_index.dir/index/flat_index.cc.o"
  "CMakeFiles/ann_index.dir/index/flat_index.cc.o.d"
  "CMakeFiles/ann_index.dir/index/hnsw_index.cc.o"
  "CMakeFiles/ann_index.dir/index/hnsw_index.cc.o.d"
  "CMakeFiles/ann_index.dir/index/ivf_index.cc.o"
  "CMakeFiles/ann_index.dir/index/ivf_index.cc.o.d"
  "CMakeFiles/ann_index.dir/index/search_trace.cc.o"
  "CMakeFiles/ann_index.dir/index/search_trace.cc.o.d"
  "CMakeFiles/ann_index.dir/index/spann_index.cc.o"
  "CMakeFiles/ann_index.dir/index/spann_index.cc.o.d"
  "CMakeFiles/ann_index.dir/index/vamana.cc.o"
  "CMakeFiles/ann_index.dir/index/vamana.cc.o.d"
  "CMakeFiles/ann_index.dir/quant/product_quantizer.cc.o"
  "CMakeFiles/ann_index.dir/quant/product_quantizer.cc.o.d"
  "CMakeFiles/ann_index.dir/quant/scalar_quantizer.cc.o"
  "CMakeFiles/ann_index.dir/quant/scalar_quantizer.cc.o.d"
  "libann_index.a"
  "libann_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
