
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/args.cc" "src/CMakeFiles/ann_common.dir/common/args.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/args.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/ann_common.dir/common/env.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/env.cc.o.d"
  "/root/repo/src/common/error.cc" "src/CMakeFiles/ann_common.dir/common/error.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/error.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ann_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ann_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/ann_common.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/ann_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/ann_common.dir/common/table.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/common/table.cc.o.d"
  "/root/repo/src/distance/distance.cc" "src/CMakeFiles/ann_common.dir/distance/distance.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/distance/distance.cc.o.d"
  "/root/repo/src/distance/recall.cc" "src/CMakeFiles/ann_common.dir/distance/recall.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/distance/recall.cc.o.d"
  "/root/repo/src/distance/topk.cc" "src/CMakeFiles/ann_common.dir/distance/topk.cc.o" "gcc" "src/CMakeFiles/ann_common.dir/distance/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
