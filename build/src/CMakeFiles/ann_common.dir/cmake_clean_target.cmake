file(REMOVE_RECURSE
  "libann_common.a"
)
