# Empty compiler generated dependencies file for ann_common.
# This may be replaced when dependencies are built.
