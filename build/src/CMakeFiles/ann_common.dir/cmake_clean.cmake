file(REMOVE_RECURSE
  "CMakeFiles/ann_common.dir/common/args.cc.o"
  "CMakeFiles/ann_common.dir/common/args.cc.o.d"
  "CMakeFiles/ann_common.dir/common/env.cc.o"
  "CMakeFiles/ann_common.dir/common/env.cc.o.d"
  "CMakeFiles/ann_common.dir/common/error.cc.o"
  "CMakeFiles/ann_common.dir/common/error.cc.o.d"
  "CMakeFiles/ann_common.dir/common/logging.cc.o"
  "CMakeFiles/ann_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ann_common.dir/common/rng.cc.o"
  "CMakeFiles/ann_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ann_common.dir/common/serialize.cc.o"
  "CMakeFiles/ann_common.dir/common/serialize.cc.o.d"
  "CMakeFiles/ann_common.dir/common/stats.cc.o"
  "CMakeFiles/ann_common.dir/common/stats.cc.o.d"
  "CMakeFiles/ann_common.dir/common/table.cc.o"
  "CMakeFiles/ann_common.dir/common/table.cc.o.d"
  "CMakeFiles/ann_common.dir/distance/distance.cc.o"
  "CMakeFiles/ann_common.dir/distance/distance.cc.o.d"
  "CMakeFiles/ann_common.dir/distance/recall.cc.o"
  "CMakeFiles/ann_common.dir/distance/recall.cc.o.d"
  "CMakeFiles/ann_common.dir/distance/topk.cc.o"
  "CMakeFiles/ann_common.dir/distance/topk.cc.o.d"
  "libann_common.a"
  "libann_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
