file(REMOVE_RECURSE
  "libann_engine.a"
)
