
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost_model.cc" "src/CMakeFiles/ann_engine.dir/engine/cost_model.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/cost_model.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/ann_engine.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/global_hnsw.cc" "src/CMakeFiles/ann_engine.dir/engine/global_hnsw.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/global_hnsw.cc.o.d"
  "/root/repo/src/engine/lance_like.cc" "src/CMakeFiles/ann_engine.dir/engine/lance_like.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/lance_like.cc.o.d"
  "/root/repo/src/engine/milvus_like.cc" "src/CMakeFiles/ann_engine.dir/engine/milvus_like.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/milvus_like.cc.o.d"
  "/root/repo/src/engine/qdrant_like.cc" "src/CMakeFiles/ann_engine.dir/engine/qdrant_like.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/qdrant_like.cc.o.d"
  "/root/repo/src/engine/query_trace.cc" "src/CMakeFiles/ann_engine.dir/engine/query_trace.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/query_trace.cc.o.d"
  "/root/repo/src/engine/weaviate_like.cc" "src/CMakeFiles/ann_engine.dir/engine/weaviate_like.cc.o" "gcc" "src/CMakeFiles/ann_engine.dir/engine/weaviate_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ann_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
