# Empty compiler generated dependencies file for ann_engine.
# This may be replaced when dependencies are built.
