file(REMOVE_RECURSE
  "CMakeFiles/ann_engine.dir/engine/cost_model.cc.o"
  "CMakeFiles/ann_engine.dir/engine/cost_model.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/engine.cc.o"
  "CMakeFiles/ann_engine.dir/engine/engine.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/global_hnsw.cc.o"
  "CMakeFiles/ann_engine.dir/engine/global_hnsw.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/lance_like.cc.o"
  "CMakeFiles/ann_engine.dir/engine/lance_like.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/milvus_like.cc.o"
  "CMakeFiles/ann_engine.dir/engine/milvus_like.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/qdrant_like.cc.o"
  "CMakeFiles/ann_engine.dir/engine/qdrant_like.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/query_trace.cc.o"
  "CMakeFiles/ann_engine.dir/engine/query_trace.cc.o.d"
  "CMakeFiles/ann_engine.dir/engine/weaviate_like.cc.o"
  "CMakeFiles/ann_engine.dir/engine/weaviate_like.cc.o.d"
  "libann_engine.a"
  "libann_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
