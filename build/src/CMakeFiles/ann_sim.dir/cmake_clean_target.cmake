file(REMOVE_RECURSE
  "libann_sim.a"
)
