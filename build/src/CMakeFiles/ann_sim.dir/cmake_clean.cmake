file(REMOVE_RECURSE
  "CMakeFiles/ann_sim.dir/sim/cpu_model.cc.o"
  "CMakeFiles/ann_sim.dir/sim/cpu_model.cc.o.d"
  "CMakeFiles/ann_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ann_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/ann_sim.dir/sim/resource.cc.o"
  "CMakeFiles/ann_sim.dir/sim/resource.cc.o.d"
  "CMakeFiles/ann_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/ann_sim.dir/sim/simulator.cc.o.d"
  "libann_sim.a"
  "libann_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
