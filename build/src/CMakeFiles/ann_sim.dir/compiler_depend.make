# Empty compiler generated dependencies file for ann_sim.
# This may be replaced when dependencies are built.
