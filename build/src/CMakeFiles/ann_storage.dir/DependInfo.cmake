
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_tracer.cc" "src/CMakeFiles/ann_storage.dir/storage/block_tracer.cc.o" "gcc" "src/CMakeFiles/ann_storage.dir/storage/block_tracer.cc.o.d"
  "/root/repo/src/storage/page_cache.cc" "src/CMakeFiles/ann_storage.dir/storage/page_cache.cc.o" "gcc" "src/CMakeFiles/ann_storage.dir/storage/page_cache.cc.o.d"
  "/root/repo/src/storage/ssd_model.cc" "src/CMakeFiles/ann_storage.dir/storage/ssd_model.cc.o" "gcc" "src/CMakeFiles/ann_storage.dir/storage/ssd_model.cc.o.d"
  "/root/repo/src/storage/storage_backend.cc" "src/CMakeFiles/ann_storage.dir/storage/storage_backend.cc.o" "gcc" "src/CMakeFiles/ann_storage.dir/storage/storage_backend.cc.o.d"
  "/root/repo/src/storage/trace_analysis.cc" "src/CMakeFiles/ann_storage.dir/storage/trace_analysis.cc.o" "gcc" "src/CMakeFiles/ann_storage.dir/storage/trace_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ann_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ann_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
