file(REMOVE_RECURSE
  "CMakeFiles/ann_storage.dir/storage/block_tracer.cc.o"
  "CMakeFiles/ann_storage.dir/storage/block_tracer.cc.o.d"
  "CMakeFiles/ann_storage.dir/storage/page_cache.cc.o"
  "CMakeFiles/ann_storage.dir/storage/page_cache.cc.o.d"
  "CMakeFiles/ann_storage.dir/storage/ssd_model.cc.o"
  "CMakeFiles/ann_storage.dir/storage/ssd_model.cc.o.d"
  "CMakeFiles/ann_storage.dir/storage/storage_backend.cc.o"
  "CMakeFiles/ann_storage.dir/storage/storage_backend.cc.o.d"
  "CMakeFiles/ann_storage.dir/storage/trace_analysis.cc.o"
  "CMakeFiles/ann_storage.dir/storage/trace_analysis.cc.o.d"
  "libann_storage.a"
  "libann_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
