# Empty dependencies file for ann_storage.
# This may be replaced when dependencies are built.
