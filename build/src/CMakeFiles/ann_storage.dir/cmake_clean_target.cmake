file(REMOVE_RECURSE
  "libann_storage.a"
)
