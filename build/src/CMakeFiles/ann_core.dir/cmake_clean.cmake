file(REMOVE_RECURSE
  "CMakeFiles/ann_core.dir/core/bench_runner.cc.o"
  "CMakeFiles/ann_core.dir/core/bench_runner.cc.o.d"
  "CMakeFiles/ann_core.dir/core/experiments.cc.o"
  "CMakeFiles/ann_core.dir/core/experiments.cc.o.d"
  "CMakeFiles/ann_core.dir/core/replay.cc.o"
  "CMakeFiles/ann_core.dir/core/replay.cc.o.d"
  "CMakeFiles/ann_core.dir/core/report.cc.o"
  "CMakeFiles/ann_core.dir/core/report.cc.o.d"
  "CMakeFiles/ann_core.dir/core/tuner.cc.o"
  "CMakeFiles/ann_core.dir/core/tuner.cc.o.d"
  "libann_core.a"
  "libann_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
