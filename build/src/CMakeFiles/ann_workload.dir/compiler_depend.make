# Empty compiler generated dependencies file for ann_workload.
# This may be replaced when dependencies are built.
