file(REMOVE_RECURSE
  "libann_workload.a"
)
