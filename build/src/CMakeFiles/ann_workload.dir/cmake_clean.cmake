file(REMOVE_RECURSE
  "CMakeFiles/ann_workload.dir/workload/dataset.cc.o"
  "CMakeFiles/ann_workload.dir/workload/dataset.cc.o.d"
  "CMakeFiles/ann_workload.dir/workload/generator.cc.o"
  "CMakeFiles/ann_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/ann_workload.dir/workload/registry.cc.o"
  "CMakeFiles/ann_workload.dir/workload/registry.cc.o.d"
  "libann_workload.a"
  "libann_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
